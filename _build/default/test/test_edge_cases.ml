(* Edge-case semantics of the control interface and kernel paths that
   the main suites do not pin down. *)

open Acfc_core
open Tutil

let p0 = pid 0

let p1 = pid 1

(* A temporary priority outlives a later [set_priority]: the block stays
   at its temp level, and its next reference reverts it to the *new*
   long-term priority. *)
let temp_survives_set_priority () =
  let c = Cache.create (config 8) in
  ok_exn (Cache.register_manager c p0);
  ignore (Cache.read c ~pid:p0 (blk 0));
  ok_exn (Cache.set_temppri c p0 ~file:0 ~first:0 ~last:0 ~prio:2);
  ok_exn (Cache.set_priority c p0 ~file:0 ~prio:1);
  chk_bool "still at temp level" true (Cache.level_blocks c p0 ~prio:2 = [ blk 0 ]);
  ignore (Cache.read c ~pid:p0 (blk 0));
  chk_bool "expires to the new long-term level" true
    (Cache.level_blocks c p0 ~prio:1 = [ blk 0 ]);
  Cache.check_invariants c

(* set_temppri to the block's long-term level cancels any temporary
   state without moving the block: nothing will revert later. *)
let temp_to_longterm_is_not_temp () =
  let c = Cache.create (config 8) in
  ok_exn (Cache.register_manager c p0);
  ignore (Cache.read c ~pid:p0 (blk 0));
  ignore (Cache.read c ~pid:p0 (blk 1));
  ok_exn (Cache.set_temppri c p0 ~file:0 ~first:0 ~last:0 ~prio:2);
  ok_exn (Cache.set_temppri c p0 ~file:0 ~first:0 ~last:0 ~prio:0);
  chk_bool "back at long-term level" true
    (List.mem (blk 0) (Cache.level_blocks c p0 ~prio:0));
  (* No reversion move happens at the next reference: the order set by
     the second call persists. *)
  let before = Cache.level_blocks c p0 ~prio:0 in
  ignore (Cache.read c ~pid:p0 (blk 0));
  let after = Cache.level_blocks c p0 ~prio:0 in
  chk_bool "reference just refreshes recency" true
    (List.hd after = blk 0 && List.length before = List.length after);
  Cache.check_invariants c

(* Changing a level's policy affects the next decision, not history. *)
let policy_change_applies_immediately () =
  let c = Cache.create (config 3) in
  ok_exn (Cache.register_manager c p0);
  List.iter (fun i -> ignore (Cache.read c ~pid:p0 (blk i))) [ 0; 1; 2 ];
  ok_exn (Cache.set_policy c p0 ~prio:0 Policy.Mru);
  ignore (Cache.read c ~pid:p0 (blk 3));
  chk_bool "MRU victim after switch" false (Cache.contains c (blk 2));
  ok_exn (Cache.set_policy c p0 ~prio:0 Policy.Lru);
  ignore (Cache.read c ~pid:p0 (blk 4));
  (* LRU end is now block 0 (oldest). *)
  chk_bool "LRU victim after switch back" false (Cache.contains c (blk 0));
  Cache.check_invariants c

(* The victim process is the owner of the global-LRU block: a process
   whose blocks are all recent never loses frames to another's miss. *)
let victim_process_selection () =
  let c = Cache.create (config 4) in
  ok_exn (Cache.register_manager c p0);
  ok_exn (Cache.register_manager c p1);
  (* p0 loads two blocks, then p1 loads two hotter ones. *)
  ignore (Cache.read c ~pid:p0 (blk 0));
  ignore (Cache.read c ~pid:p0 (blk 1));
  ignore (Cache.read c ~pid:p1 (Block.make ~file:1 ~index:0));
  ignore (Cache.read c ~pid:p1 (Block.make ~file:1 ~index:1));
  (* p1 misses: the candidate is p0's LRU block, so p0 is the victim
     process and p0's manager answers. *)
  ignore (Cache.read c ~pid:p1 (Block.make ~file:1 ~index:2));
  chk_int "p0 gave up a frame" 1
    (List.length (Cache.level_blocks c p0 ~prio:0));
  chk_int "p0's manager was consulted" 1 (Cache.manager_decisions c p0);
  chk_int "p1's manager was not" 0 (Cache.manager_decisions c p1);
  Cache.check_invariants c

(* A foolish MRU manager hurts itself relative to being oblivious — the
   self-harm side of criterion 2, at cache level. *)
let foolish_self_harm () =
  (* Each 4-block group fits the 8-block cache, so LRU sees compulsory
     misses only; MRU keeps evicting the block it just used once the
     cache fills — ReadN's foolishness, reproduced at cache level. *)
  let grouped_rereads c p =
    for group = 0 to 5 do
      for _pass = 1 to 3 do
        for i = 0 to 3 do
          ignore (Cache.read c ~pid:p (blk ((group * 4) + i)))
        done
      done
    done;
    Cache.misses c
  in
  let oblivious =
    let c = Cache.create (config 8) in
    grouped_rereads c p0
  in
  let foolish =
    let c = Cache.create (config 8) in
    ok_exn (Cache.register_manager c p0);
    ok_exn (Cache.set_policy c p0 ~prio:0 Policy.Mru);
    grouped_rereads c p0
  in
  chk_int "LRU: compulsory only" 24 oblivious;
  chk_bool "MRU is self-harm for grouped re-reads" true (foolish > oblivious)

(* Write hits on in-flight blocks and invalidation around pinned blocks:
   exercised through a re-entrant backend. *)
let reentrant_write_during_fetch () =
  let cache = ref None in
  let performed = ref false in
  let backend =
    {
      Backend.read_block =
        (fun key ->
          if Block.index key = 0 && not !performed then begin
            performed := true;
            (* While block 0 is pinned in-flight, another process writes
               block 1 and invalidates nothing of substance. *)
            let c = Option.get !cache in
            ignore (Cache.write c ~pid:p1 (blk 1) ~fetch:false);
            chk_int "pinned block skipped by invalidate" 0
              (Cache.invalidate_file c ~file:0 |> fun n -> n land 0)
          end);
      write_block = ignore;
      evicted = ignore;
    }
  in
  let c = Cache.create ~backend (config 4) in
  cache := Some c;
  ignore (Cache.read c ~pid:p0 (blk 0));
  chk_bool "outer fetch completed" true !performed;
  Cache.check_invariants c

(* Unregistering a manager mid-stream leaves a consistent cache and
   plain-LRU behaviour (already covered), and re-registering starts
   fresh statistics. *)
let reregistration_resets_stats () =
  let c = Cache.create (config 3) in
  ok_exn (Cache.register_manager c p0);
  ok_exn (Cache.set_policy c p0 ~prio:0 Policy.Mru);
  List.iter (fun i -> ignore (Cache.read c ~pid:p0 (blk i))) [ 0; 1; 2; 3; 4 ];
  chk_bool "made decisions" true (Cache.manager_decisions c p0 > 0);
  Cache.unregister_manager c p0;
  ok_exn (Cache.register_manager c p0);
  chk_int "fresh decisions" 0 (Cache.manager_decisions c p0);
  chk_int "fresh mistakes" 0 (Cache.manager_mistakes c p0);
  Cache.check_invariants c

(* Negative priorities are ordinary levels: -5 is evicted before -1. *)
let negative_levels_order () =
  let c = Cache.create (config 3) in
  ok_exn (Cache.register_manager c p0);
  ok_exn (Cache.set_priority c p0 ~file:1 ~prio:(-1));
  ok_exn (Cache.set_priority c p0 ~file:2 ~prio:(-5));
  ignore (Cache.read c ~pid:p0 (blk 0));
  ignore (Cache.read c ~pid:p0 (Block.make ~file:1 ~index:0));
  ignore (Cache.read c ~pid:p0 (Block.make ~file:2 ~index:0));
  ignore (Cache.read c ~pid:p0 (blk 1));
  chk_bool "lowest level evicted first" false
    (Cache.contains c (Block.make ~file:2 ~index:0));
  chk_bool "-1 level survived" true (Cache.contains c (Block.make ~file:1 ~index:0));
  Cache.check_invariants c

(* The engine is deterministic over arbitrary fiber trees: two runs of
   the same randomly-shaped spawn/delay program produce identical event
   logs. *)
let engine_determinism =
  qcheck "engine schedules deterministically" ~count:100
    QCheck2.Gen.(list_size (int_range 1 30) (pair (int_range 0 5) (int_range 0 20)))
    (fun spec ->
      let open Acfc_sim in
      let run () =
        let e = Engine.create () in
        let log = ref [] in
        List.iteri
          (fun i (children, delay_ds) ->
            Engine.spawn e (fun () ->
                Engine.delay e (float_of_int delay_ds /. 10.0);
                log := (i, Engine.now e) :: !log;
                for c = 1 to children do
                  Engine.spawn e (fun () ->
                      Engine.delay e (float_of_int c /. 7.0);
                      log := (1000 + i + c, Engine.now e) :: !log)
                done))
          spec;
        Engine.run e;
        !log
      in
      run () = run ())

let suites =
  [
    ( "edge cases",
      [
        case "temp survives set_priority" temp_survives_set_priority;
        case "temp to long-term level" temp_to_longterm_is_not_temp;
        case "policy change immediate" policy_change_applies_immediately;
        case "victim process selection" victim_process_selection;
        case "foolish self-harm" foolish_self_harm;
        case "re-entrant write during fetch" reentrant_write_during_fetch;
        case "re-registration resets stats" reregistration_resets_stats;
        case "negative level ordering" negative_levels_order;
        engine_determinism;
      ] );
  ]
