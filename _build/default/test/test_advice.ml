module Fs = Acfc_fs.Fs
module File = Acfc_fs.File
module Advice = Acfc_fs.Advice
module Cache = Acfc_core.Cache
module Control = Acfc_core.Control
module Policy = Acfc_core.Policy
module Disk = Acfc_disk.Disk
module Params = Acfc_disk.Params
open Tutil

let bb = Params.block_bytes

let ok_exn' = function
  | Ok v -> v
  | Error e -> Alcotest.fail (Acfc_core.Error.to_string e)

let with_stack ?(capacity = 16) f =
  in_sim (fun engine ->
      let disk = Disk.create engine Params.rz56 in
      let fs = Fs.create engine ~config:(config capacity) () in
      let file = Fs.create_file fs ~name:"data" ~disk ~size_bytes:(8 * bb) () in
      let control = ok_exn' (Control.attach (Fs.cache fs) (pid 0)) in
      f engine fs file control)

let noreuse_sets_priority () =
  with_stack (fun _ _ file control ->
      ok_exn (Advice.advise control file Advice.Noreuse);
      chk_bool "priority -1" true
        (Control.get_priority control ~file:(File.id file) = Ok (-1)))

let normal_resets () =
  with_stack (fun _ _ file control ->
      ok_exn (Advice.advise control file Advice.Noreuse);
      ok_exn (Advice.advise control file Advice.Normal);
      chk_bool "priority back to 0" true
        (Control.get_priority control ~file:(File.id file) = Ok 0);
      chk_bool "readahead on" true file.File.readahead_enabled)

let random_disables_readahead () =
  with_stack (fun _ fs file control ->
      ok_exn (Advice.advise control file Advice.Random);
      chk_bool "flag cleared" false file.File.readahead_enabled;
      (* A sequential scan now costs exactly its blocks, read on demand. *)
      Fs.read fs ~pid:(pid 0) file ~off:0 ~len:(8 * bb);
      chk_int "demand reads only" 8 (Fs.pid_disk_reads fs (pid 0)))

let sequential_noreuse () =
  with_stack (fun _ _ file control ->
      ok_exn (Advice.advise control file (Advice.Sequential { reuse = false }));
      chk_bool "read-once priority" true
        (Control.get_priority control ~file:(File.id file) = Ok (-1));
      chk_bool "readahead on" true file.File.readahead_enabled)

let dontneed_drops_blocks () =
  with_stack ~capacity:4 (fun _ fs file control ->
      let cache = Fs.cache fs in
      Fs.read fs ~pid:(pid 0) file ~off:0 ~len:(3 * bb);
      ok_exn (Advice.advise control file (Advice.Dontneed { first = 0; last = 1 }));
      (* Blocks 0 and 1 are now first in line for eviction; the demand
         miss on 5 plus its read-ahead of 6 claim exactly those two
         frames. *)
      Fs.read fs ~pid:(pid 0) file ~off:(5 * bb) ~len:bb;
      chk_bool "dropped advised block" false
        (Cache.contains cache (File.block_key file ~index:0));
      chk_bool "unadvised block survives" true
        (Cache.contains cache (File.block_key file ~index:2)))

let willneed_keeps_blocks () =
  with_stack ~capacity:4 (fun _ fs file control ->
      let cache = Fs.cache fs in
      Fs.read fs ~pid:(pid 0) file ~off:0 ~len:bb;
      ok_exn (Advice.advise control file (Advice.Willneed { first = 0; last = 0 }));
      (* Fill the rest of the cache and overflow it: the advised block
         outlives blocks accessed after it. *)
      Fs.read fs ~pid:(pid 0) file ~off:(2 * bb) ~len:(4 * bb);
      chk_bool "advised block survives" true
        (Cache.contains cache (File.block_key file ~index:0)))

let cyclic_sets_mru () =
  with_stack (fun _ _ file control ->
      ok_exn (Advice.advise control file Advice.Cyclic);
      chk_bool "MRU installed" true (Control.get_policy control ~prio:0 = Ok Policy.Mru))

let advice_requires_manager () =
  in_sim (fun engine ->
      let disk = Disk.create engine Params.rz56 in
      let fs = Fs.create engine ~config:(config 8) () in
      let file = Fs.create_file fs ~name:"x" ~disk ~size_bytes:bb () in
      let control = ok_exn' (Control.attach (Fs.cache fs) (pid 1)) in
      Control.detach control;
      chk_bool "fails when detached" true
        (Advice.advise control file Advice.Noreuse = Error Acfc_core.Error.Not_registered))

let pp_coverage () =
  List.iter
    (fun a -> chk_bool "prints" true (String.length (Format.asprintf "%a" Advice.pp a) > 0))
    [
      Advice.Normal;
      Advice.Sequential { reuse = true };
      Advice.Random;
      Advice.Willneed { first = 0; last = 3 };
      Advice.Dontneed { first = 1; last = 2 };
      Advice.Noreuse;
      Advice.Cyclic;
    ]

let suites =
  [
    ( "advice (fadvise layer)",
      [
        case "noreuse" noreuse_sets_priority;
        case "normal resets" normal_resets;
        case "random disables readahead" random_disables_readahead;
        case "sequential noreuse" sequential_noreuse;
        case "dontneed drops" dontneed_drops_blocks;
        case "willneed keeps" willneed_keeps_blocks;
        case "cyclic = MRU" cyclic_sets_mru;
        case "requires a manager" advice_requires_manager;
        case "printer coverage" pp_coverage;
      ] );
  ]
