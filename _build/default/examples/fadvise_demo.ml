(* The fadvise bridge: the paper's 1994 interface subsumes the access
   advice that later reached POSIX as posix_fadvise — and one pattern
   it cannot express (Cyclic/MRU), which is the paper's biggest win.

   A scan-heavy "report generator" touches three files:
   - a configuration file it rereads constantly       (hot)
   - a log file it scans cyclically per report        (cyclic)
   - an archive it streams through exactly once       (noreuse)

   Run with:  dune exec examples/fadvise_demo.exe
*)

open Acfc_sim
module Config = Acfc_core.Config
module Control = Acfc_core.Control
module Pid = Acfc_core.Pid
module Fs = Acfc_fs.Fs
module Advice = Acfc_fs.Advice
module Disk = Acfc_disk.Disk

let bb = Acfc_disk.Params.block_bytes

let run ~advised =
  let engine = Engine.create () in
  let disk = Disk.create engine Acfc_disk.Params.rz56 in
  let fs =
    Fs.create engine ~config:(Config.make ~capacity_blocks:150 ()) ()
  in
  let pid = Pid.make 1 in
  let config_file = Fs.create_file fs ~name:"report.conf" ~disk ~size_bytes:(10 * bb) () in
  let log = Fs.create_file fs ~name:"events.log" ~disk ~size_bytes:(200 * bb) () in
  let archive = Fs.create_file fs ~name:"archive.dat" ~disk ~size_bytes:(300 * bb) () in
  Engine.spawn engine (fun () ->
      if advised then begin
        let c =
          match Control.attach (Fs.cache fs) pid with
          | Ok c -> c
          | Error e -> failwith (Acfc_core.Error.to_string e)
        in
        let ok = function
          | Ok () -> ()
          | Error e -> failwith (Acfc_core.Error.to_string e)
        in
        ok (Advice.advise c log Advice.Cyclic);
        ok (Advice.advise c archive Advice.Noreuse);
        ok (Advice.advise c config_file (Advice.Willneed { first = 0; last = 9 }))
      end;
      for _report = 1 to 4 do
        Fs.read fs ~pid config_file ~off:0 ~len:(10 * bb);
        Fs.read fs ~pid log ~off:0 ~len:(200 * bb);
        Fs.read fs ~pid archive ~off:0 ~len:0
      done;
      (* One final streaming pass over the archive. *)
      Fs.read fs ~pid archive ~off:0 ~len:(300 * bb));
  Engine.run engine;
  (Fs.total_block_ios fs, Engine.now engine)

let () =
  let ios_plain, t_plain = run ~advised:false in
  let ios_advised, t_advised = run ~advised:true in
  Format.printf
    "report generator over a 150-block cache (conf rereads + cyclic log scans@\n\
    \ + one-shot archive stream)@\n";
  Format.printf "  unadvised: %4d block I/Os, %6.1f s@\n" ios_plain t_plain;
  Format.printf "  advised:   %4d block I/Os, %6.1f s@\n" ios_advised t_advised;
  Format.printf
    "advice used: Cyclic (MRU) on the log, Noreuse on the archive, Willneed@\n\
     on the configuration blocks — all expressed with the paper's five calls@\n"
