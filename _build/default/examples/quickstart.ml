(* Quickstart: build the whole stack by hand — engine, disk, cache,
   file system — run one process that scans a file twice, and watch the
   cache work. Run with:

     dune exec examples/quickstart.exe
*)

open Acfc_sim
module Config = Acfc_core.Config
module Control = Acfc_core.Control
module Pid = Acfc_core.Pid
module Cache = Acfc_core.Cache
module Disk = Acfc_disk.Disk
module Fs = Acfc_fs.Fs

let () =
  (* A simulation engine, one RZ56 disk, and a 100-block cache using
     the paper's LRU-SP allocation policy. *)
  let engine = Engine.create () in
  let disk = Disk.create engine Acfc_disk.Params.rz56 in
  let config = Config.make ~alloc_policy:Config.Lru_sp ~capacity_blocks:100 () in
  let fs = Fs.create engine ~config () in
  let cache = Fs.cache fs in

  (* A 150-block file: larger than the cache, so a repeated scan gets
     zero reuse under LRU but plenty under MRU. *)
  let pid = Pid.make 1 in
  let file =
    Fs.create_file fs ~owner:pid ~name:"dataset" ~disk ~size_bytes:(150 * 8192) ()
  in

  Engine.spawn engine ~name:"scanner" (fun () ->
      (* Register as a manager and ask for MRU on our (default) level:
         the "cyclic access" idiom from the paper. *)
      let control =
        match Control.attach cache pid with
        | Ok c -> c
        | Error e -> failwith (Acfc_core.Error.to_string e)
      in
      (match Control.set_policy control ~prio:0 Acfc_core.Policy.Mru with
      | Ok () -> ()
      | Error e -> failwith (Acfc_core.Error.to_string e));

      for pass = 1 to 2 do
        let before = Cache.misses cache in
        Fs.read fs ~pid file ~off:0 ~len:(150 * 8192);
        Format.printf "pass %d: %d misses, now %.2f s of virtual time@." pass
          (Cache.misses cache - before)
          (Engine.now engine)
      done);

  Engine.run engine;
  Format.printf "done: %d block I/Os, %d cache hits, %d overrules@."
    (Fs.total_block_ios fs) (Cache.hits cache) (Cache.overrule_count cache)
