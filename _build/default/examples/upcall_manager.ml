(* A fully custom user-level replacement policy via upcalls.

   The paper's interface offers priorities plus LRU/MRU pools because
   that covers the common patterns cheaply; but Sec. 4 notes the same
   BUF/ACM split supports upcall-style user-level handlers. This example
   installs one (Control.set_chooser) that implements LRU-2 — a policy
   the pool interface cannot express — and uses it to survive scan
   pollution that defeats plain LRU.

   The workload: a database-like process keeps re-reading a hot index
   while one-shot report scans sweep by. LRU-2 ignores blocks seen only
   once, so the scans cannot displace the index.

   Run with:  dune exec examples/upcall_manager.exe
*)

module Config = Acfc_core.Config
module Cache = Acfc_core.Cache
module Control = Acfc_core.Control
module Block = Acfc_core.Block
module Pid = Acfc_core.Pid

let capacity = 64

let hot_blocks = 32  (* the index, re-read constantly *)

let scan_blocks = 48  (* each report scan, seen once *)

let ok = function Ok v -> v | Error e -> failwith (Acfc_core.Error.to_string e)

let workload cache pid =
  let refs = ref [] in
  let read b =
    refs := b :: !refs;
    ignore (Cache.read cache ~pid b)
  in
  for round = 0 to 7 do
    for i = 0 to hot_blocks - 1 do
      read (Block.make ~file:0 ~index:i)
    done;
    (* a one-shot report scan with fresh blocks every round *)
    for i = 0 to scan_blocks - 1 do
      read (Block.make ~file:1 ~index:((round * scan_blocks) + i))
    done
  done

let run ~with_upcall =
  let cache = Cache.create (Config.make ~capacity_blocks:capacity ()) in
  let pid = Pid.make 1 in
  if with_upcall then begin
    let control = ok (Control.attach cache pid) in
    (* User-level LRU-2: track the last two reference times of every
       block we own; evict the one whose second-to-last reference is
       oldest (blocks seen once are prime victims). *)
    let clock = ref 0 in
    let history : (Block.t, int * int) Hashtbl.t = Hashtbl.create 256 in
    let tracer = function
      | Acfc_core.Event.Hit { block; _ } | Acfc_core.Event.Miss { block; _ } ->
        incr clock;
        let last, _ =
          Option.value (Hashtbl.find_opt history block) ~default:(-1, -1)
        in
        Hashtbl.replace history block (!clock, last)
      | _ -> ()
    in
    Cache.set_tracer cache (Some tracer);
    ok
      (Control.set_chooser control
         (Some
            (fun ~candidate:_ ~resident ->
              let score b =
                match Hashtbl.find_opt history b with
                | Some (_, penultimate) -> penultimate
                | None -> -1
              in
              let best =
                List.fold_left
                  (fun acc b ->
                    match acc with
                    | Some best when score best <= score b -> acc
                    | _ -> Some b)
                  None resident
              in
              best)))
  end;
  workload cache (Pid.make 1);
  (Cache.pid_misses cache (Pid.make 1), Cache.overrule_count cache)

let () =
  let misses_lru, _ = run ~with_upcall:false in
  let misses_lru2, overrules = run ~with_upcall:true in
  Format.printf
    "hot %d-block index re-read under %d-block one-shot scans, %d-block cache@.@."
    hot_blocks scan_blocks capacity;
  Format.printf "  kernel LRU:            %4d misses@." misses_lru;
  Format.printf "  upcall LRU-2 manager:  %4d misses (%d overrules)@." misses_lru2
    overrules;
  Format.printf
    "@.the handler implements a policy the pool interface cannot express;@\n\
     the micro-benchmarks show what that generality costs per miss@."
