examples/trace_analysis.ml: Acfc_core Acfc_replacement Acfc_workload Array Format List
