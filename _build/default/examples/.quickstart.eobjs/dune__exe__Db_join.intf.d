examples/db_join.mli:
