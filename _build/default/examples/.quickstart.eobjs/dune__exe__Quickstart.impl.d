examples/quickstart.ml: Acfc_core Acfc_disk Acfc_fs Acfc_sim Engine Format
