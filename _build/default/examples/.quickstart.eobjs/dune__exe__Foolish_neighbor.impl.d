examples/foolish_neighbor.ml: Acfc_core Acfc_workload Format List Readn
