examples/fadvise_demo.mli:
