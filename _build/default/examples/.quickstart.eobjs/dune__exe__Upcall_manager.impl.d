examples/upcall_manager.ml: Acfc_core Format Hashtbl List Option
