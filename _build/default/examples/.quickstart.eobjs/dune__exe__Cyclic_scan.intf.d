examples/cyclic_scan.mli:
