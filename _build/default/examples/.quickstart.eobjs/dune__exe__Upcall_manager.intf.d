examples/upcall_manager.mli:
