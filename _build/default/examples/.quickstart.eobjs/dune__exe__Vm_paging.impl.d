examples/vm_paging.ml: Acfc_core Acfc_sim Format Rng
