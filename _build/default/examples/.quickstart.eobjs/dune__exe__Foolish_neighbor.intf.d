examples/foolish_neighbor.mli:
