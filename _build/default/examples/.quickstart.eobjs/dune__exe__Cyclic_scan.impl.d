examples/cyclic_scan.ml: Acfc_core Acfc_workload Format List Printf
