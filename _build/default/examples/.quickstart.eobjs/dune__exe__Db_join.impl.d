examples/db_join.ml: Acfc_core Acfc_workload Format List Printf
