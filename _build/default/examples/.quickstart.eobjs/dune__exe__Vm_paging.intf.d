examples/vm_paging.mli:
