examples/quickstart.mli:
