examples/trace_analysis.mli:
