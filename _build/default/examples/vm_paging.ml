(* Virtual-memory paging with application control (paper Sec. 7).

   The paper argues its scheme carries over to VM page caches, whose
   kernels keep a CLOCK list rather than true LRU: "one can swap
   positions of pages on the two-hand-clock list, and can build
   placeholders". The Clock_sp allocation policy is exactly that.

   Here two "address spaces" (files standing in for segments) are paged
   through a small memory: one process sweeps a large matrix cyclically
   (an MRU-friendly pattern), the other touches a working set with
   temporal locality that CLOCK handles well. We compare the stock
   CLOCK kernel against CLOCK + application control.

   Run with:  dune exec examples/vm_paging.exe
*)

open Acfc_sim
module Config = Acfc_core.Config
module Control = Acfc_core.Control
module Cache = Acfc_core.Cache
module Pid = Acfc_core.Pid
module Block = Acfc_core.Block
module Policy = Acfc_core.Policy

let pages = 256  (* physical memory, in pages *)

let matrix_pages = 400  (* the sweeping process's segment *)

let hot_pages = 96  (* the interactive process's working set *)

let run ~smart =
  let cache = Cache.create (Config.make ~alloc_policy:Config.Clock_sp ~capacity_blocks:pages ()) in
  let sweeper = Pid.make 1 and interactive = Pid.make 2 in
  if smart then begin
    match Control.attach cache sweeper with
    | Error e -> failwith (Acfc_core.Error.to_string e)
    | Ok c ->
      (match Control.set_policy c ~prio:0 Policy.Mru with
      | Ok () -> ()
      | Error e -> failwith (Acfc_core.Error.to_string e))
  end;
  let rng = Rng.create 42 in
  (* Interleave: the sweeper walks its matrix page by page; between its
     references the interactive process touches random hot pages. *)
  for _round = 1 to 6 do
    for page = 0 to matrix_pages - 1 do
      ignore (Cache.read cache ~pid:sweeper (Block.make ~file:0 ~index:page));
      ignore
        (Cache.read cache ~pid:interactive
           (Block.make ~file:1 ~index:(Rng.int rng hot_pages)))
    done
  done;
  ( Cache.pid_misses cache sweeper,
    Cache.pid_misses cache interactive,
    Cache.overrule_count cache )

let () =
  Format.printf
    "VM paging, %d physical pages, CLOCK kernel (Clock-SP): a cyclic sweeper@\n\
     (%d pages) vs an interactive process (%d-page working set)@.@." pages
    matrix_pages hot_pages;
  let s0, i0, _ = run ~smart:false in
  let s1, i1, ov = run ~smart:true in
  Format.printf "  stock CLOCK:        sweeper %4d faults, interactive %4d faults@." s0 i0;
  Format.printf "  + MRU on sweeper:   sweeper %4d faults, interactive %4d faults@." s1 i1;
  Format.printf
    "@.the sweeper's manager overruled the clock hand %d times; both processes@\n\
     fault less — the paper's Sec. 7 claim, demonstrated on a page cache@."
    ov
