(* Regenerates the golden snapshots under test/golden/.

   The goldens pin the observable outputs of the simulation core —
   fig5/fig6 tables, criteria verdicts, and a metrics snapshot — so that
   hot-path re-indexing work (indexed disk queues, indexed replacement
   policies) can be proven byte-identical to the behaviour before the
   change. Run from the repo root:

     dune exec test/gen_golden.exe -- test/golden

   Only regenerate when an intentional behaviour change is made, and
   record the justification in the commit message. *)

let () =
  let dir = if Array.length Sys.argv > 1 then Sys.argv.(1) else "test/golden" in
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  List.iter
    (fun (name, render) ->
      let contents = render () in
      let path = Filename.concat dir name in
      let oc = open_out path in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () -> output_string oc contents);
      Printf.printf "wrote %s (%d bytes)\n%!" path (String.length contents))
    (Golden_defs.snapshots ~jobs:1);
  (* The committed fleet example is generated from the same definition
     the fleet_small.txt golden pins, so the two can never drift. Only
     written when run from the repo root. *)
  let examples =
    [
      ("examples/scenarios/fleet_small.json", Golden_defs.fleet_small);
      ("examples/scenarios/adaptive_arc.json", Golden_defs.adaptive_arc_small);
    ]
  in
  List.iter
    (fun (example, scenario) ->
      if Sys.file_exists (Filename.dirname example) then begin
        Acfc_scenario.Scenario.save (scenario ()) example;
        Printf.printf "wrote %s\n%!" example
      end)
    examples
