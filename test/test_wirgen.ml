(* The synthetic workload generator and the fuzz harness.

   The heart of this suite is one quick fuzz pass over every pattern
   family — ≥ 1000 generated/mutated programs through the four ROADMAP
   invariants (valid ⇒ exec cannot fail; references ≡ recorded demand
   stream; codec round-trip is identity; corruptions are rejected with
   a $.path) — plus pinned diagnostics for the wirgen spec codec and
   for each Wir rejection class the corrupting mutators target, so a
   fuzz failure always maps to a stable message. *)

module Wir = Acfc_wir.Wir
module Wirgen = Acfc_wirgen.Wirgen
module Mutate = Acfc_wirgen.Mutate
module Fuzz = Acfc_wirgen.Fuzz
module Scenario = Acfc_scenario.Scenario
module Rng = Acfc_sim.Rng
module Json = Acfc_obs.Json
open Tutil

let chk_str = check Alcotest.string

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.fail ("unexpected error: " ^ e)

let expect_error msg = function
  | Ok _ -> Alcotest.fail ("succeeded; expected: " ^ msg)
  | Error e -> chk_str "error message" msg e

(* {2 Spec basics} *)

let test_default_specs_valid () =
  ok (Wirgen.validate Wirgen.default);
  List.iter (fun s -> ok (Wirgen.validate s)) Fuzz.default_specs;
  chk_int "one single-pattern spec per family plus the mixed default"
    (List.length Wirgen.patterns + 1)
    (List.length Fuzz.default_specs)

let test_spec_validate_errors () =
  let d = Wirgen.default in
  List.iter
    (fun (spec, msg) -> expect_error msg (Wirgen.validate spec))
    [
      ({ d with Wirgen.name = "" }, "wirgen: corpus name must be non-empty at $.name");
      ( { d with Wirgen.mix = [ (Wirgen.Sequential, 0.0) ] },
        "wirgen: at least one pattern weight must be positive at $.mix" );
      ( { d with Wirgen.mix = [ (Wirgen.Sequential, -1.0) ] },
        "wirgen: pattern weights must be finite and non-negative at $.mix" );
      ( { d with Wirgen.files = (0, 4) },
        "wirgen: file count minimum must be at least 1 at $.files" );
      ( { d with Wirgen.file_blocks = (8, 4) },
        "wirgen: file size maximum must be at least its minimum at $.file_blocks" );
      ( { d with Wirgen.passes = (0, 0) },
        "wirgen: pass count minimum must be at least 1 at $.passes" );
      ({ d with Wirgen.locality = 0.0 }, "wirgen: locality must be in (0, 1] at $.locality");
      ({ d with Wirgen.advise = 1.5 }, "wirgen: advise density must be in [0, 1] at $.advise");
    ]

let test_spec_roundtrip () =
  List.iter
    (fun spec ->
      let s = Wirgen.to_string spec in
      let spec' = ok (Wirgen.of_string s) in
      chk_bool "spec round-trips" true (spec' = spec);
      chk_str "canonical form is stable" s (Wirgen.to_string spec');
      chk_str "hash is stable" (Wirgen.hash spec) (Wirgen.hash spec'))
    (Wirgen.default :: Fuzz.default_specs)

let test_spec_parse_errors () =
  let base =
    {|{"schema":"acfc-wirgen/1","name":"t","mix":{"cyclic":1},"files":[1,2],"file_blocks":[8,16],"passes":[2,3],"locality":0.25,"advise":0.5}|}
  in
  ignore (ok (Wirgen.of_string base));
  let replace ~old ~new_ =
    let rec go i =
      if i + String.length old > String.length base then
        Alcotest.fail ("substring not found: " ^ old)
      else if String.sub base i (String.length old) = old then
        String.sub base 0 i ^ new_
        ^ String.sub base
            (i + String.length old)
            (String.length base - i - String.length old)
      else go (i + 1)
    in
    go 0
  in
  List.iter
    (fun (json, msg) -> expect_error msg (Wirgen.of_string json))
    [
      ( replace ~old:{|"advise":0.5}|} ~new_:{|"advise":0.5,"zzz":1}|},
        {|wirgen: unknown field "zzz" at $|} );
      ( replace ~old:{|{"cyclic":1}|} ~new_:{|{"ziggurat":1}|},
        {|wirgen: unknown pattern "ziggurat" (expected sequential, cyclic, hot_cold, random or access_once) at $.mix|}
      );
      ( replace ~old:{|{"cyclic":1}|} ~new_:{|{"cyclic":1,"cyclic":2}|},
        {|wirgen: duplicate pattern "cyclic" at $.mix|} );
      ( replace ~old:{|"acfc-wirgen/1"|} ~new_:{|"acfc-wirgen/9"|},
        {|wirgen: unsupported schema "acfc-wirgen/9" (expected acfc-wirgen/1) at $.schema|}
      );
      ( replace ~old:{|"files":[1,2],|} ~new_:"",
        {|wirgen: missing required field "files" at $|} );
      ( replace ~old:{|"files":[1,2]|} ~new_:{|"files":"many"|},
        {|wirgen: expected a [min, max] pair of integers at $.files|} );
      ( replace ~old:{|"locality":0.25|} ~new_:{|"locality":"low"|},
        {|wirgen: expected a number at $.locality|} );
      ( replace ~old:{|"files":[1,2]|} ~new_:{|"files":[0,2]|},
        {|wirgen: file count minimum must be at least 1 at $.files|} );
    ]

(* {2 Generator determinism} *)

let test_generate_deterministic () =
  List.iter
    (fun spec ->
      let a = Wirgen.generate spec ~seed:42 in
      let b = Wirgen.generate spec ~seed:42 in
      chk_str "same spec+seed, same JSON" (Wir.to_string a) (Wir.to_string b);
      chk_str "same spec+seed, same hash" (Wir.hash a) (Wir.hash b);
      let c = Wirgen.generate spec ~seed:43 in
      chk_bool "different seed, different program" true (Wir.to_string a <> Wir.to_string c))
    Fuzz.default_specs

let test_corpus_convention () =
  let members = Wirgen.corpus Wirgen.default ~seed:100 ~count:5 in
  chk_int "corpus size" 5 (List.length members);
  List.iteri
    (fun i p ->
      chk_str "member i = generate (seed + i)"
        (Wir.hash (Wirgen.generate Wirgen.default ~seed:(100 + i)))
        (Wir.hash p))
    members;
  let names = List.map (fun p -> p.Wir.name) members in
  chk_int "member names are distinct"
    (List.length names)
    (List.length (List.sort_uniq compare names))

(* {2 The rejection classes the corrupting mutators target}

   One pinned diagnostic per class, so a fuzz-found corruption always
   maps to a stable message. *)

let test_rejection_classes () =
  let prog ops = Wir.make ~name:"t" ~category:"test" ops in
  (* Slot discipline: referencing a never-opened slot. *)
  expect_error "wir: file 0 is not open (0 files opened so far) at $.ops[0]"
    (Wir.validate (prog [ Wir.read ~file:0 ~first:0 ~count:1 () ]));
  (* Slot discipline: Open inside a loop. *)
  expect_error "wir: open is not allowed inside loop or choice at $.ops[0].body[0]"
    (Wir.validate
       (prog [ Wir.loop 2 [ Wir.open_file ~name:"f" ~size_blocks:1 () ] ]));
  (* Extent out of range. *)
  expect_error "wir: read of blocks [0, 20) exceeds file 0's 10-block extent at $.ops[1]"
    (Wir.validate
       (prog
          [
            Wir.open_file ~name:"f" ~size_blocks:10 ();
            Wir.read ~file:0 ~first:0 ~count:20 ();
          ]));
  (* Out-of-range probability. *)
  expect_error "wir: prob must be between 0 and 1 at $.ops[0]"
    (Wir.validate (prog [ Wir.choice ~prob:1.5 [ Wir.compute 0.0 ] [] ]));
  (* Bad enum (parse level). *)
  expect_error {|wir: unknown policy "fifo" (expected lru or mru) at $.ops[1].policy|}
    (Wir.of_string
       {|{"schema":"acfc-wir/1","name":"t","category":"c","ops":[{"op":"open","name":"f","size_blocks":1},{"op":"advise","kind":"policy","prio":0,"policy":"fifo"}]}|});
  (* Unknown field (parse level). *)
  expect_error {|wir: unknown field "cnt" at $.ops[1]|}
    (Wir.of_string
       {|{"schema":"acfc-wir/1","name":"t","category":"c","ops":[{"op":"open","name":"f","size_blocks":1},{"op":"read","file":0,"first":0,"count":1,"cnt":2}]}|})

let test_mutators_deterministic_classes () =
  (* Every corruption class the mutators can draw is actually rejected
     with a $.path diagnostic, on a real generated program. *)
  let p = Wirgen.generate Wirgen.default ~seed:7 in
  for k = 0 to 63 do
    let rng = Rng.create k in
    let bad = Mutate.corrupt ~rng p in
    (match Wir.validate bad with
    | Ok () -> Alcotest.fail "corrupt mutant passed validate"
    | Error e -> chk_bool "semantic diagnostic has a path" true (contains_sub ~sub:"$." e));
    let rng = Rng.create k in
    let badj = Mutate.corrupt_json ~rng (Wir.to_json p) in
    (match Wir.of_json badj with
    | Ok _ -> Alcotest.fail "corrupt JSON passed of_json"
    | Error e -> chk_bool "syntactic diagnostic has a path" true (contains_sub ~sub:"$" e));
    let rng = Rng.create k in
    match Wir.validate (Mutate.preserve ~rng p) with
    | Ok () -> ()
    | Error e -> Alcotest.fail ("preserving mutant rejected: " ^ e)
  done

(* {2 The quick fuzz pass} *)

let test_quick_fuzz () =
  let stats, failures =
    Fuzz.run ~specs:Fuzz.default_specs ~seed:1000 ~programs:35 ~mutants:4 ()
  in
  (match failures with
  | [] -> ()
  | f :: _ ->
    Alcotest.fail
      (Printf.sprintf "%d fuzz failure(s); first: spec %s seed %d [%s] %s"
         (List.length failures) f.Fuzz.spec_name f.Fuzz.seed f.Fuzz.invariant
         f.Fuzz.detail));
  chk_int "programs generated" (35 * List.length Fuzz.default_specs) stats.Fuzz.generated;
  chk_bool "≥ 1000 generated/mutated programs" true
    (stats.Fuzz.generated + stats.Fuzz.mutated >= 1000);
  chk_int "all five pattern families exercised" 5
    (List.length stats.Fuzz.by_category);
  List.iter
    (fun cat ->
      chk_bool ("family present: " ^ cat) true
        (List.mem_assoc cat stats.Fuzz.by_category))
    [ "sequential"; "cyclic"; "hot/cold"; "random"; "access-once" ]

(* {2 Generated corpora as scenarios} *)

let test_scenario_integration () =
  let sc = Wirgen.scenario Wirgen.default ~seed:5 ~count:3 in
  chk_int "one workload per corpus member" 3 (List.length sc.Scenario.workloads);
  chk_int "corpus seed is the scenario seed" 5 sc.Scenario.seed;
  let sc' = ok (Scenario.of_string (Scenario.to_string sc)) in
  chk_str "generated scenario round-trips" (Scenario.hash sc) (Scenario.hash sc');
  let r = Scenario.run sc in
  chk_bool "corpus scenario runs to completion" true
    (r.Acfc_workload.Runner.makespan > 0.0);
  chk_int "one result per corpus member" 3
    (List.length r.Acfc_workload.Runner.apps)

let suites =
  [
    ( "wirgen",
      [
    case "default specs validate" test_default_specs_valid;
    case "spec validate: pinned diagnostics" test_spec_validate_errors;
    case "spec codec round-trip" test_spec_roundtrip;
    case "spec parse: pinned diagnostics" test_spec_parse_errors;
    case "generate is bit-reproducible" test_generate_deterministic;
    case "corpus follows the seed+i convention" test_corpus_convention;
    case "rejection classes: pinned diagnostics" test_rejection_classes;
    case "mutators: every class behaves" test_mutators_deterministic_classes;
        case "quick fuzz: four invariants, five families" test_quick_fuzz;
        case "generated corpus scenario" test_scenario_integration;
      ] );
  ]
