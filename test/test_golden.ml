(* Golden determinism: the committed snapshots under test/golden/ were
   generated before the hot-path re-indexing (indexed disk queues,
   indexed LRU-2/OPT, interleave and table rewrites); the live system
   must reproduce them byte-for-byte, at every [jobs] value. This is the
   acceptance gate for "observable behaviour unchanged" — if a change
   legitimately moves these outputs, regenerate with gen_golden.exe and
   justify the diff in the commit message. *)

open Tutil

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Under `dune runtest` the cwd is the sandboxed test directory and the
   snapshots are staged at golden/; under a bare `dune exec
   test/main.exe` (as CI's ACFC_JOBS=2 pass runs it) the cwd is the
   project root, so fall back to the source tree. *)
let golden name =
  let candidates =
    [ Filename.concat "golden" name; Filename.concat "test/golden" name ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some path -> read_file path
  | None ->
    Alcotest.fail
      (Printf.sprintf "missing golden %s — run: dune exec test/gen_golden.exe"
         (List.hd candidates))

let chk_snapshot name render () =
  check Alcotest.string (name ^ " byte-identical to golden") (golden name) (render ())

let suites =
  [
    ( "golden",
      List.concat_map
        (fun jobs ->
          List.map
            (fun (name, render) ->
              case (Printf.sprintf "%s (jobs=%d)" name jobs) (chk_snapshot name render))
            (Golden_defs.snapshots ~jobs))
        [ 1; 3 ] );
  ]
