let () =
  Alcotest.run "acfc"
    (List.concat
       [
         Test_rng.suites;
         Test_heap.suites;
         Test_dll.suites;
         Test_engine.suites;
         Test_resource.suites;
         Test_ivar.suites;
         Test_disk.suites;
         Test_block.suites;
         Test_cache.suites;
         Test_equivalence.suites;
         Test_fs.suites;
         Test_replacement.suites;
         Test_stats.suites;
         Test_workloads.suites;
         Test_experiments.suites;
         Test_advice.suites;
         Test_integration.suites;
         Test_edge_cases.suites;
         Test_recorder.suites;
         Test_obs.suites;
         Test_par.suites;
         Test_sched_queue.suites;
         Test_golden.suites;
       ])
