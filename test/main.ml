(* Re-executions of this binary with the race-root variable set are
   children of the cross-process store race test, not test runs. *)
let () =
  match Sys.getenv_opt Test_store.race_env with
  | Some root -> Test_store.race_child root
  | None -> ()

let () =
  Alcotest.run "acfc"
    (List.concat
       [
         Test_rng.suites;
         Test_heap.suites;
         Test_dll.suites;
         Test_ctab.suites;
         Test_engine.suites;
         Test_resource.suites;
         Test_ivar.suites;
         Test_disk.suites;
         Test_block.suites;
         Test_cache.suites;
         Test_equivalence.suites;
         Test_fs.suites;
         Test_replacement.suites;
         Test_policy_core.suites;
         Test_stats.suites;
         Test_workloads.suites;
         Test_scenario.suites;
         Test_wir.suites;
         Test_wirgen.suites;
         Test_experiments.suites;
         Test_advice.suites;
         Test_integration.suites;
         Test_edge_cases.suites;
         Test_recorder.suites;
         Test_obs.suites;
         Test_par.suites;
         Test_fleet.suites;
         Test_sched_queue.suites;
         Test_store.suites;
         Test_monitor.suites;
         Test_listings.suites;
         Test_golden.suites;
       ])
