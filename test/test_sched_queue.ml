(* The indexed disk queue (Sched_queue) against its naive list-based
   reference: randomised arrival/dispatch sequences must produce the
   same picks, lengths, and sweep reversals under both FCFS and SCAN. *)

open Tutil
module Sq = Acfc_disk.Sched_queue

(* A step either enqueues a waiter for an address or frees the drive at
   a head position and dispatches. Addresses are drawn from a small
   range so equal-address ties and sweep reversals are common. *)
type step = Add of int | Pick of int

let steps_gen =
  let open QCheck2.Gen in
  list
    (bind (int_range 0 40) (fun v ->
         map (fun add -> if add then Add v else Pick v) bool))

let agree discipline steps =
  let indexed = Sq.create discipline in
  let naive = Sq.Naive.create discipline in
  let next_id = ref 0 in
  List.for_all
    (fun step ->
      match step with
      | Add addr ->
        let id = !next_id in
        incr next_id;
        Sq.add indexed ~addr id;
        Sq.Naive.add naive ~addr id;
        Sq.length indexed = Sq.Naive.length naive
      | Pick head ->
        let a = Sq.pick indexed ~head and b = Sq.Naive.pick naive ~head in
        a = b
        && Sq.length indexed = Sq.Naive.length naive
        && Sq.sweep_up indexed = Sq.Naive.sweep_up naive)
    steps

let fcfs_agrees =
  qcheck "FCFS indexed picker == naive reference" ~count:300 steps_gen (agree Sq.Fcfs)

let scan_agrees =
  qcheck "SCAN indexed picker == naive reference" ~count:300 steps_gen (agree Sq.Scan)

(* Exhaustive drain: everything enqueued comes out exactly once, in the
   same order under both implementations. *)
let drain_identical () =
  List.iter
    (fun discipline ->
      let indexed = Sq.create discipline in
      let naive = Sq.Naive.create discipline in
      let addrs = [ 30; 5; 30; 17; 99; 0; 42; 30; 5; 64 ] in
      List.iteri
        (fun id addr ->
          Sq.add indexed ~addr id;
          Sq.Naive.add naive ~addr id)
        addrs;
      let drain pick =
        let rec go acc head =
          match pick ~head with
          | None -> List.rev acc
          | Some id -> go (id :: acc) (List.nth addrs id)
        in
        go [] 20
      in
      let a = drain (fun ~head -> Sq.pick indexed ~head) in
      let b = drain (fun ~head -> Sq.Naive.pick naive ~head) in
      check
        Alcotest.(list int)
        "drain order identical" b a;
      chk_int "all served" (List.length addrs) (List.length a))
    [ Sq.Fcfs; Sq.Scan ]

let scan_elevator () =
  (* Head at 50 sweeping up: serves 60, 70, then reverses for 40, 10. *)
  let q = Sq.create Sq.Scan in
  List.iteri (fun id addr -> Sq.add q ~addr id) [ 40; 60; 10; 70 ];
  let picks = List.init 4 (fun _ -> Option.get (Sq.pick q ~head:50)) in
  check Alcotest.(list int) "elevator order" [ 1; 3; 0; 2 ] picks;
  chk_bool "swept down" false (Sq.sweep_up q);
  chk_bool "drained" true (Sq.is_empty q)

let fcfs_ties () =
  (* Same address repeatedly: FCFS and SCAN both serve arrival order. *)
  List.iter
    (fun discipline ->
      let q = Sq.create discipline in
      for id = 0 to 9 do
        Sq.add q ~addr:7 id
      done;
      let picks = List.init 10 (fun _ -> Option.get (Sq.pick q ~head:3)) in
      check Alcotest.(list int) "arrival order on ties" (List.init 10 Fun.id) picks)
    [ Sq.Fcfs; Sq.Scan ]

let empty_pick () =
  let q = Sq.create Sq.Scan in
  chk_bool "empty pick is None" true (Sq.pick q ~head:0 = None);
  Sq.add q ~addr:3 0;
  chk_int "length" 1 (Sq.length q);
  ignore (Sq.pick q ~head:0);
  chk_bool "empty again" true (Sq.pick q ~head:0 = None)

let suites =
  [
    ( "sched_queue",
      [
        fcfs_agrees;
        scan_agrees;
        case "drain identical vs naive" drain_identical;
        case "SCAN elevator order" scan_elevator;
        case "arrival order on equal addresses" fcfs_ties;
        case "empty queue" empty_pick;
      ] );
  ]
