(* CLI listing order: [workload list], [policy list] and
   [report --list] print in sorted name order so their output is stable
   under registry refactors (CI derives its smoke loops from these).
   The tests pin both the sorting contract and the current names, so a
   new application/policy/experiment shows up here deliberately. *)

open Tutil

let sorted = List.sort String.compare

let chk_sorted what names =
  check Alcotest.(list string) (what ^ " listed in sorted order") (sorted names) names

let test_workload_listing () =
  let names = sorted Acfc_scenario.Catalog.app_names in
  chk_sorted "applications" names;
  check
    Alcotest.(list string)
    "the eight catalog applications"
    [ "cs1"; "cs2"; "cs3"; "din"; "gli"; "ldk"; "pjn"; "sort" ]
    names

let test_policy_listing () =
  let module R = Acfc_policy.Registry in
  let names = sorted (List.map R.name R.all) in
  chk_sorted "policies" names;
  check
    Alcotest.(list string)
    "the unified policy registry"
    [
      "2Q"; "ARC"; "AWRP"; "CLOCK"; "FIFO"; "LRU"; "LRU-2"; "MRU"; "OPT";
      "PERCEPTRON"; "RAND";
    ]
    names

let test_experiment_listing () =
  let names = sorted (List.map fst Acfc_experiments.Registry.experiments) in
  chk_sorted "experiments" names;
  check
    Alcotest.(list string)
    "the paper's artifacts"
    [
      "ablations"; "criteria"; "fig4"; "fig5"; "fig6"; "table1"; "table2";
      "table3"; "table4"; "table5"; "table6";
    ]
    names

let suites =
  [
    ( "listings",
      [
        case "workload list is sorted and complete" test_workload_listing;
        case "policy list is sorted and complete" test_policy_listing;
        case "report --list is sorted and complete" test_experiment_listing;
      ] );
  ]
