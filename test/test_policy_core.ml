(* The unified policy core: registry lookup, offline/live adapter
   equivalence (the determinism contract of DESIGN.md section 9), and
   property suites for the adaptive cores. *)

open Tutil
module Core = Acfc_core
module P = Acfc_policy
module Pc = Acfc_policy.Policy_core

let render_victims vs =
  String.concat ", " (List.map (fun b -> Fmt.str "%a" Core.Block.pp b) vs)

(* {2 Demand streams} *)

(* Three deterministic traces that force plenty of evictions: a cyclic
   scan (the LRU worst case), a skewed pseudo-random stream, and a
   two-file interleave exercising the file-id feature of the
   perceptron. *)
let streams () =
  let cyclic = Array.init 140 (fun i -> blk (i mod 24)) in
  let skewed =
    let r = Acfc_sim.Rng.create 42 in
    Array.init 400 (fun _ ->
        let x = Acfc_sim.Rng.int r 64 in
        blk (if x < 40 then x mod 12 else x))
  in
  let two_file =
    Array.init 300 (fun i ->
        if i mod 3 = 0 then blk ~file:1 (i mod 10) else blk (i * 7 mod 40))
  in
  [ ("cyclic", 16, cyclic); ("skewed", 24, skewed); ("two-file", 12, two_file) ]

(* {2 Live harness} *)

(* Run a core as a live [fbehavior] manager: a real cache, one attached
   manager, the plug-in installed through [Control], victims recorded
   from [Evict] tracer events. *)
let live_replay entry ~capacity trace =
  let cache = Core.Cache.create (config capacity) in
  let p0 = pid 0 in
  let control = ok_exn (Core.Control.attach cache p0) in
  let adapter = P.Live.make entry ~capacity ~future:trace () in
  ok_exn (P.Live.install adapter control);
  let victims = ref [] in
  Core.Cache.set_tracer cache
    (Some
       (function
       | Core.Event.Evict e -> victims := e.victim :: !victims
       | _ -> ()));
  let hits = ref 0 and misses = ref 0 in
  Array.iter
    (fun b ->
      match Core.Cache.read cache ~pid:p0 b with
      | `Hit -> incr hits
      | `Miss -> incr misses)
    trace;
  { Pc.hits = !hits; misses = !misses; victims = List.rev !victims }

(* The tentpole assertion: for every registered policy, the offline
   replay and the live manager path produce the identical victim
   sequence and hit/miss counts from the same demand stream. *)
let offline_live_identity () =
  List.iter
    (fun entry ->
      let name = P.Registry.name entry in
      List.iter
        (fun (stream, capacity, trace) ->
          let off = Pc.replay entry ~capacity trace in
          let live = live_replay entry ~capacity trace in
          let tag what = Fmt.str "%s/%s %s" name stream what in
          check Alcotest.string (tag "victims")
            (render_victims off.victims)
            (render_victims live.victims);
          chk_int (tag "hits") off.hits live.hits;
          chk_int (tag "misses") off.misses live.misses;
          chk_bool (tag "evictions happened") true (off.victims <> []))
        (streams ()))
    P.Registry.all

(* {2 Registry} *)

let ok_exn' = function Ok v -> v | Error e -> Alcotest.fail e

let registry_contents () =
  chk_int "eleven cores" 11 (List.length P.Registry.all);
  let names = P.Registry.names in
  check Alcotest.(list string) "registration order"
    [
      "LRU"; "MRU"; "FIFO"; "CLOCK"; "LRU-2"; "2Q"; "RAND"; "OPT"; "ARC";
      "AWRP"; "PERCEPTRON";
    ]
    names;
  let opt = ok_exn' (P.Registry.find "opt") in
  chk_bool "OPT needs the future" true (P.Registry.needs_future opt);
  let arc = ok_exn' (P.Registry.find "Arc") in
  chk_bool "ARC is adaptive" true (P.Registry.adaptive arc);
  chk_bool "ARC is online" false (P.Registry.needs_future arc);
  List.iter
    (fun e -> chk_bool "has a summary" true (P.Registry.summary e <> ""))
    P.Registry.all

let registry_errors () =
  (match P.Registry.find "zzzzzz" with
  | Ok _ -> Alcotest.fail "expected an error"
  | Error msg ->
      chk_bool "lists valid names" true (contains_sub ~sub:"PERCEPTRON" msg);
      chk_bool "no suggestion for garbage" false
        (contains_sub ~sub:"did you mean" msg));
  match P.Registry.find "clok" with
  | Ok _ -> Alcotest.fail "expected an error"
  | Error msg ->
      chk_bool "suggests nearest" true
        (contains_sub ~sub:{|did you mean "CLOCK"|} msg)

(* {2 Adaptive-core properties} *)

(* Drive a core by hand with the standard full-cache discipline, calling
   [check] on its stats after every event. *)
let drive (module C : Pc.CORE) ~capacity trace ~check:check_stats =
  let t = C.create ~capacity ~future:trace in
  let resident = Hashtbl.create 64 in
  Array.iteri
    (fun pos b ->
      (if Hashtbl.mem resident b then
         C.on_event t (Pc.Reference { pos; block = b })
       else begin
         if Hashtbl.length resident >= capacity then begin
           let v = C.victim t ~pos ~missing:b in
           Hashtbl.remove resident v;
           C.on_event t (Pc.Evict { block = v })
         end;
         Hashtbl.add resident b ();
         C.on_event t (Pc.Admit { pos; block = b })
       end);
      check_stats (C.stats t))
    trace

let trace_gen =
  QCheck2.Gen.(
    pair (int_range 2 8) (list_size (int_range 1 300) (int_range 0 25)))

let arc_ghost_bound =
  qcheck ~count:200 "ARC ghost lists stay within capacity" trace_gen
    (fun (cap, refs) ->
      let trace = Array.of_list (List.map blk refs) in
      let ok = ref true in
      drive
        (module P.Cores.Arc)
        ~capacity:cap trace
        ~check:(fun stats ->
          let get k = List.assoc k stats in
          let bound = float_of_int cap in
          if get "b1" > bound || get "b2" > bound then ok := false;
          if get "p" < 0. || get "p" > bound then ok := false);
      !ok)

let awrp_deterministic =
  qcheck ~count:100 "AWRP replays bit-identically" trace_gen (fun (cap, refs) ->
      let trace = Array.of_list (List.map blk refs) in
      let a = Pc.replay (module P.Cores.Awrp) ~capacity:cap trace in
      let b = Pc.replay (module P.Cores.Awrp) ~capacity:cap trace in
      a.victims = b.victims && a.hits = b.hits)

let awrp_weight_clamped =
  qcheck ~count:100 "AWRP weight stays clamped" trace_gen (fun (cap, refs) ->
      let trace = Array.of_list (List.map blk refs) in
      let ok = ref true in
      drive
        (module P.Cores.Awrp)
        ~capacity:cap trace
        ~check:(fun stats ->
          let w = List.assoc "w" stats in
          if w < 0.05 -. 1e-12 || w > 0.95 +. 1e-12 then ok := false);
      !ok)

let perceptron_finite_and_deterministic =
  qcheck ~count:100 "perceptron weights finite, replay bit-identical"
    trace_gen (fun (cap, refs) ->
      let trace = Array.of_list (List.map blk refs) in
      let ok = ref true in
      drive
        (module P.Cores.Perceptron)
        ~capacity:cap trace
        ~check:(fun stats ->
          List.iter
            (fun (k, v) ->
              if String.length k = 2 && k.[0] = 'w' then
                if not (Float.is_finite v) || Float.abs v > 4.0 +. 1e-12 then
                  ok := false)
            stats);
      let a = Pc.replay (module P.Cores.Perceptron) ~capacity:cap trace in
      let b = Pc.replay (module P.Cores.Perceptron) ~capacity:cap trace in
      !ok && a.victims = b.victims)

(* {2 Live adapter odds and ends} *)

let live_surface () =
  let entry = ok_exn' (P.Registry.find "arc") in
  let adapter = P.Live.make entry ~capacity:8 () in
  check Alcotest.string "adapter name" "ARC" (P.Live.name adapter);
  chk_bool "stats exposed" true (P.Live.stats adapter <> [])

let suites =
  [
    ( "policy_core",
      [
        case "offline and live adapters agree" offline_live_identity;
        case "registry contents" registry_contents;
        case "registry errors" registry_errors;
        case "live adapter surface" live_surface;
        arc_ghost_bound;
        awrp_deterministic;
        awrp_weight_clamped;
        perceptron_finite_and_deterministic;
      ] );
  ]
