(* Property tests for the columnar substrates: {!Ilist} against {!Dll},
   {!Itbl} against a stdlib [Hashtbl] model, {!Ctab} slot lifecycle
   (free-list reuse, growth), {!Engine.Equeue} ordering against the
   generic {!Heap}, and the full-cache {!Lockstep} random-op property.
   All randomness comes from seeded {!Rng}, so failures replay. *)

open Acfc_core
open Tutil

(* {2 Ilist vs Dll: random op sequences over one shared store} *)

(* The model pairs each live slot with its Dll node. Ops are chosen
   among push_front/push_back/remove/move_front/move_back/swap on a
   random member, interleaved with membership churn, and after every op
   the front-to-back orders must agree. *)
let ilist_model_test ~seed ~ops () =
  let rng = Acfc_sim.Rng.create seed in
  let store = Ilist.make_store 4 in
  let il = Ilist.create () in
  let dll = Dll.create () in
  let nodes = Hashtbl.create 16 (* slot -> int Dll.node *) in
  let members () = Hashtbl.fold (fun s _ acc -> s :: acc) nodes [] in
  let pick_member () =
    let ms = List.sort compare (members ()) in
    List.nth ms (Acfc_sim.Rng.int rng (List.length ms))
  in
  let next_slot = ref 0 in
  for step = 1 to ops do
    let have = Hashtbl.length nodes in
    let r = Acfc_sim.Rng.int rng 100 in
    if have = 0 || r < 30 then begin
      let s = !next_slot in
      incr next_slot;
      Ilist.grow_store store (s + 1);
      if Acfc_sim.Rng.int rng 2 = 0 then begin
        Ilist.push_front store il s;
        Hashtbl.replace nodes s (Dll.push_front dll s)
      end
      else begin
        Ilist.push_back store il s;
        Hashtbl.replace nodes s (Dll.push_back dll s)
      end
    end
    else if r < 45 then begin
      let s = pick_member () in
      Ilist.remove store il s;
      Dll.remove dll (Hashtbl.find nodes s);
      Hashtbl.remove nodes s
    end
    else if r < 65 then begin
      let s = pick_member () in
      Ilist.move_front store il s;
      Dll.move_front dll (Hashtbl.find nodes s)
    end
    else if r < 85 then begin
      let s = pick_member () in
      Ilist.move_back store il s;
      Dll.move_back dll (Hashtbl.find nodes s)
    end
    else begin
      let a = pick_member () and b = pick_member () in
      if a <> b then begin
        Ilist.swap store il a b;
        (* [swap_values] exchanges values between the two nodes, so the
           slot -> node map must be repaired through [on_move]. *)
        Dll.swap_values
          ~on_move:(fun v n -> Hashtbl.replace nodes v n)
          dll (Hashtbl.find nodes a) (Hashtbl.find nodes b)
      end
    end;
    let got = Ilist.to_list store il in
    let want = Dll.to_list dll in
    if got <> want then
      Alcotest.failf "step %d: ilist %s, dll %s" step
        (String.concat "," (List.map string_of_int got))
        (String.concat "," (List.map string_of_int want));
    chk_int "length agrees" (Dll.length dll) (Ilist.length il)
  done;
  (* Walks agree with the order in both directions. *)
  let order = Ilist.to_list store il in
  let rec walk_front s acc =
    if s = Ilist.nil then acc
    else walk_front (Ilist.next_toward_front store s) (s :: acc)
  in
  chk_bool "back-to-front walk" true (walk_front (Ilist.back il) [] = order);
  List.iter (fun s -> chk_bool "mem" true (Ilist.mem store il s)) order

(* {2 Itbl vs Hashtbl: random set/remove/find, shrink and reuse} *)

let itbl_model_test ~seed ~ops ~keyspace () =
  let rng = Acfc_sim.Rng.create seed in
  let t = Itbl.create 4 in
  let model = Hashtbl.create 16 in
  for _ = 1 to ops do
    let key = Acfc_sim.Rng.int rng keyspace in
    let r = Acfc_sim.Rng.int rng 100 in
    if r < 55 then begin
      let v = Acfc_sim.Rng.int rng 1_000_000 in
      Itbl.set t key v;
      Hashtbl.replace model key v
    end
    else if r < 85 then begin
      Itbl.remove t key;
      Hashtbl.remove model key
    end
    else begin
      let want = match Hashtbl.find_opt model key with Some v -> v | None -> -1 in
      chk_int "find" want (Itbl.find t key);
      chk_bool "mem" (want >= 0) (Itbl.mem t key)
    end;
    chk_int "length" (Hashtbl.length model) (Itbl.length t)
  done;
  (* Every model binding is found, and iter covers exactly the model. *)
  Hashtbl.iter (fun k v -> chk_int "final find" v (Itbl.find t k)) model;
  let seen = ref 0 in
  Itbl.iter
    (fun k v ->
      incr seen;
      chk_int "iter binding" (Hashtbl.find model k) v)
    t;
  chk_int "iter count" (Hashtbl.length model) !seen

(* Steady-state churn must not degrade: a fixed live set with constant
   remove/insert cycles keeps the table at its original capacity (the
   backward-shift on remove prevents tombstone accretion — before it,
   this pattern forced a rehash every few thousand ops). *)
let itbl_churn_no_tombstone_growth () =
  let t = Itbl.create 1024 in
  for i = 0 to 1023 do
    Itbl.set t i i
  done;
  for i = 1024 to 40_000 do
    Itbl.remove t (i - 1024);
    Itbl.set t i i;
    chk_int "live count" 1024 (Itbl.length t)
  done;
  for i = 39_000 to 40_000 do
    chk_int "recent keys live" i (Itbl.find t i)
  done

(* {2 Ctab: slot lifecycle, free-list reuse, growth} *)

let ctab_lifecycle () =
  let tab = Ctab.create ~initial:4 () in
  let alloc i =
    Ctab.alloc tab ~file:0 ~index:i ~key:(Block.pack (blk i)) ~owner:1
  in
  let s0 = alloc 0 and s1 = alloc 1 in
  chk_int "live" 2 (Ctab.live tab);
  chk_bool "s0 not free" false (Ctab.is_free tab s0);
  chk_bool "block roundtrip" true (Block.equal (blk 1) (Ctab.block tab s1));
  (* Fresh slots come initialised. *)
  chk_int "flags zero" 0 tab.Ctab.flags.(s0);
  chk_int "pins zero" 0 tab.Ctab.pinned.(s0);
  chk_int "unmanaged" (-1) tab.Ctab.managed.(s0);
  chk_int "no placeholders" (-1) tab.Ctab.ph_head.(s0);
  (* Release and re-alloc reuses the freed slot (LIFO free list) and
     re-initialises it. *)
  tab.Ctab.flags.(s0) <- Ctab.dirty_bit lor Ctab.referenced_bit;
  tab.Ctab.pinned.(s0) <- 3;
  Ctab.release tab s0;
  chk_bool "freed" true (Ctab.is_free tab s0);
  let s2 = alloc 2 in
  chk_int "slot reused" s0 s2;
  chk_int "flags reset on reuse" 0 tab.Ctab.flags.(s2);
  chk_int "pins reset on reuse" 0 tab.Ctab.pinned.(s2)

let ctab_growth () =
  let tab = Ctab.create ~initial:2 () in
  let slots =
    Array.init 100 (fun i ->
        Ctab.alloc tab ~file:1 ~index:i ~key:(Block.pack (blk ~file:1 i)) ~owner:2)
  in
  chk_int "live after growth" 100 (Ctab.live tab);
  chk_bool "capacity grew" true (Ctab.capacity tab >= 100);
  (* Growth preserved every column. *)
  Array.iteri
    (fun i s ->
      chk_int "file kept" 1 tab.Ctab.file.(s);
      chk_int "index kept" i tab.Ctab.index.(s);
      chk_int "owner kept" 2 tab.Ctab.owner.(s))
    slots;
  (* Distinct live slots. *)
  let sorted = List.sort_uniq compare (Array.to_list slots) in
  chk_int "slots distinct" 100 (List.length sorted);
  (* Release everything; all reusable. *)
  Array.iter (Ctab.release tab) slots;
  chk_int "all freed" 0 (Ctab.live tab);
  let again = Ctab.alloc tab ~file:0 ~index:7 ~key:(Block.pack (blk 7)) ~owner:0 in
  chk_bool "re-alloc after drain" true (again >= 0 && not (Ctab.is_free tab again))

(* {2 Equeue vs Heap: random (time, seq) streams pop identically} *)

let equeue_model_test ~seed ~ops () =
  let rng = Acfc_sim.Rng.create seed in
  let module E = Acfc_sim.Engine.Equeue in
  let leq (ta, sa) (tb, sb) = ta < tb || (ta = tb && sa <= sb) in
  let eq = E.create () in
  let heap = Acfc_sim.Heap.create ~leq () in
  let popped = ref [] in
  let seq = ref 0 in
  for _ = 1 to ops do
    if (not (E.is_empty eq)) && Acfc_sim.Rng.int rng 3 = 0 then begin
      let tm, sq = Acfc_sim.Heap.pop_exn heap in
      chk_float "top_time" tm (E.top_time eq);
      (match E.pop eq with
      | E.Thunk f -> f ()
      | _ -> Alcotest.fail "unexpected job kind");
      match !popped with
      | (tm', sq') :: _ ->
        chk_float "pop time" tm tm';
        chk_int "pop seq" sq sq'
      | [] -> Alcotest.fail "pop recorded nothing"
    end
    else begin
      incr seq;
      let s = !seq in
      (* Coarse times force plenty of same-instant ties. *)
      let time = float_of_int (Acfc_sim.Rng.int rng 50) in
      E.push eq ~time ~seq:s (E.Thunk (fun () -> popped := (time, s) :: !popped));
      Acfc_sim.Heap.push heap (time, s)
    end
  done;
  chk_int "lengths agree" (Acfc_sim.Heap.length heap) (E.length eq);
  (* Drain: the full remaining order must agree. *)
  while not (E.is_empty eq) do
    let tm, sq = Acfc_sim.Heap.pop_exn heap in
    (match E.pop eq with E.Thunk f -> f () | _ -> Alcotest.fail "bad job");
    match !popped with
    | (tm', sq') :: _ ->
      chk_float "drain time" tm tm';
      chk_int "drain seq" sq sq'
    | [] -> Alcotest.fail "drain recorded nothing"
  done;
  chk_bool "heap drained too" true (Acfc_sim.Heap.is_empty heap)

(* {2 Lockstep random-op property: whole columnar cache vs record twin} *)

let lockstep_random ~seed ~alloc_policy () =
  let rng = Acfc_sim.Rng.create seed in
  let ri = Acfc_sim.Rng.int rng in
  let ops =
    Array.init 4_000 (fun _ ->
        let p = pid (1 + ri 3) in
        let block = blk ~file:(ri 4) (ri 64) in
        let r = ri 100 in
        if r < 50 then Lockstep.Read { pid = p; block; prefetch = ri 8 = 0 }
        else if r < 70 then Lockstep.Write { pid = p; block; fetch = ri 2 = 0 }
        else if r < 76 then Lockstep.Register_manager p
        else if r < 82 then
          Lockstep.Set_priority { pid = p; file = ri 4; prio = ri 3 }
        else if r < 86 then
          Lockstep.Set_policy
            { pid = p; prio = ri 3; policy = (if ri 2 = 0 then Policy.Lru else Policy.Mru) }
        else if r < 90 then Lockstep.Sync (if ri 2 = 0 then None else Some (ri 4))
        else if r < 95 then Lockstep.Invalidate_file (ri 4)
        else Lockstep.Unregister_manager p)
  in
  let config = config ~alloc_policy 48 in
  match Lockstep.run ~deep_every:200 config ops with
  | Ok n -> chk_int "all ops replayed" (Array.length ops) n
  | Error d -> Alcotest.failf "%s" (Format.asprintf "%a" Lockstep.pp_divergence d)

let suites =
  [
    ( "ctab",
      [
        case "ilist vs dll, seed 1" (ilist_model_test ~seed:1 ~ops:2_000);
        case "ilist vs dll, seed 2" (ilist_model_test ~seed:2 ~ops:2_000);
        case "itbl vs hashtbl, dense keys"
          (itbl_model_test ~seed:3 ~ops:6_000 ~keyspace:64);
        case "itbl vs hashtbl, sparse keys"
          (itbl_model_test ~seed:4 ~ops:6_000 ~keyspace:100_000);
        case "itbl churn stays tombstone-free" itbl_churn_no_tombstone_growth;
        case "ctab slot lifecycle and free-list reuse" ctab_lifecycle;
        case "ctab growth preserves columns" ctab_growth;
        case "equeue vs heap, seed 5" (equeue_model_test ~seed:5 ~ops:3_000);
        case "equeue vs heap, seed 6" (equeue_model_test ~seed:6 ~ops:3_000);
        case "lockstep random ops, lru-sp"
          (lockstep_random ~seed:7 ~alloc_policy:Config.Lru_sp);
        case "lockstep random ops, clock-sp"
          (lockstep_random ~seed:8 ~alloc_policy:Config.Clock_sp);
      ] );
  ]
