(* The domain-parallel fleet engine (acfc.fleet): the SPSC batch
   buffer, the deterministic barrier merge, the epoch clock, the
   determinism contract (byte-identical reports at every worker count
   and under a finer epoch partition), the per-client observability
   gauges, and the $.fleet scenario section's strict parsing. *)

open Tutil
module Batch = Acfc_fleet.Batch
module Fleet = Acfc_fleet.Fleet
module Epoch = Acfc_sim.Epoch
module Scenario = Acfc_scenario.Scenario
module Metrics = Acfc_obs.Metrics
module Obs = Acfc_obs

(* {2 Batch: no lost, duplicated or reordered requests} *)

let test_batch_roundtrip () =
  (* Capacity 2 forces repeated growth well past the initial columns. *)
  let b = Batch.create ~capacity:2 () in
  let n = 1_000 in
  let model =
    Array.init n (fun i ->
        (float_of_int ((i * 7919) mod 97) /. 8.0, i mod 7, i, i mod 3, i * 11))
  in
  Array.iter
    (fun (ts, client, seq, wld, blk) -> Batch.push b ~ts ~client ~seq ~wld ~blk)
    model;
  chk_int "every push retained" n (Batch.length b);
  Array.iteri
    (fun i (ts, client, seq, wld, blk) ->
      chk_float "ts preserved in order" ts (Batch.ts b i);
      chk_int "client preserved" client (Batch.client b i);
      chk_int "seq preserved" seq (Batch.seq b i);
      chk_int "wld preserved" wld (Batch.wld b i);
      chk_int "blk preserved" blk (Batch.blk b i))
    model;
  Batch.clear b;
  chk_int "clear empties" 0 (Batch.length b);
  Batch.push b ~ts:1.0 ~client:3 ~seq:0 ~wld:1 ~blk:42;
  chk_int "reusable after clear" 1 (Batch.length b);
  chk_int "fresh contents after clear" 42 (Batch.blk b 0)

(* {2 Barrier merge: a pure function of (ts, client, seq)} *)

let merge_spec reqs =
  List.sort
    (fun (t1, c1, s1, _, _) (t2, c2, s2, _, _) -> compare (t1, c1, s1) (t2, c2, s2))
    reqs

(* Requests with deliberate send-time ties across clients (ts drawn from
   a small grid) but unique (client, seq): the merge must equal the
   List.sort specification and must not care how the requests are
   spread over the buffers. *)
let qcheck_merge =
  qcheck ~count:200 "merge = List.sort spec, invariant under buffer distribution"
    QCheck2.Gen.(
      pair
        (list (triple (int_bound 5) (int_bound 3) (int_bound 7)))
        (int_range 1 5))
    (fun (raw, nbuf) ->
      let next_seq = Array.make 4 0 in
      let reqs =
        List.map
          (fun (t, client, wld) ->
            let seq = next_seq.(client) in
            next_seq.(client) <- seq + 1;
            (float_of_int t /. 8.0, client, seq, wld, (client * 1000) + seq))
          raw
      in
      let spread k =
        let bufs = Array.init k (fun _ -> Batch.create ~capacity:1 ()) in
        List.iteri
          (fun i (ts, client, seq, wld, blk) ->
            Batch.push bufs.(i mod k) ~ts ~client ~seq ~wld ~blk)
          reqs;
        Fleet.For_tests.merge bufs
      in
      let spec = merge_spec reqs in
      spread nbuf = spec && spread 1 = spec)

let test_merge_clears () =
  let b = Batch.create () in
  Batch.push b ~ts:1.0 ~client:0 ~seq:0 ~wld:0 ~blk:1;
  ignore (Fleet.For_tests.merge [| b |]);
  chk_int "merge drains the buffers" 0 (Batch.length b)

(* {2 Epoch clock} *)

let test_epoch_boundaries () =
  let ep = Epoch.make ~start:0.0 ~length:0.004 in
  chk_float "boundary 0" 0.0 (Epoch.boundary ep 0);
  chk_float "boundary 3" 0.012 (Epoch.boundary ep 3);
  chk_float "horizon k = boundary (k+1)" (Epoch.boundary ep 4) (Epoch.horizon ep 3)

(* index_of must return the smallest k whose horizon covers the time —
   the epoch loop relies on this to skip idle stretches without ever
   skipping an event. *)
let test_epoch_index_of () =
  let ep = Epoch.make ~start:0.0 ~length:0.004 in
  for i = 0 to 2_000 do
    let t = float_of_int i *. 0.00123 in
    let k = Epoch.index_of ep t in
    chk_bool "t <= horizon k" true (t <= Epoch.horizon ep k);
    if k > 0 then chk_bool "k minimal" true (t > Epoch.horizon ep (k - 1))
  done;
  (* Exactly on a horizon: that epoch, not the next. *)
  for k = 0 to 50 do
    chk_int "index_of (horizon k) = k" k (Epoch.index_of ep (Epoch.horizon ep k))
  done

(* {2 The determinism contract} *)

let small_fleet () = Golden_defs.fleet_small ()

let test_jobs_byte_identical () =
  let scn = small_fleet () in
  let base = Fleet.to_string (Fleet.run ~jobs:1 scn) in
  List.iter
    (fun jobs ->
      check Alcotest.string
        (Printf.sprintf "report at jobs=%d equals jobs=1" jobs)
        base
        (Fleet.to_string (Fleet.run ~jobs scn)))
    [ 2; 3; 4 ]

(* Halving the lookahead doubles the barriers and repartitions simulated
   time into different epochs; every statistic except the epoch count
   must be unchanged, because the merge order is a pure function of
   (ts, client, seq), independent of the boundary set. *)
let test_halved_lookahead () =
  let scn = small_fleet () in
  let fl = Option.get scn.Scenario.fleet in
  let halved =
    { fl with Scenario.lookahead_ms = Some (Scenario.fleet_lookahead_ms fl /. 2.0) }
  in
  let strip r = Fleet.to_string { r with Fleet.epochs = 0; lookahead_s = 0.0 } in
  let base = Fleet.run ~jobs:1 scn in
  let fine = Fleet.run ~jobs:2 { scn with Scenario.fleet = Some halved } in
  check Alcotest.string "halved lookahead reproduces every statistic" (strip base)
    (strip fine);
  chk_bool "finer partition takes at least as many epochs" true
    (fine.Fleet.epochs >= base.Fleet.epochs)

let test_report_sanity () =
  let r = Fleet.run ~jobs:2 (small_fleet ()) in
  chk_int "one stats row per client" 4 (Array.length r.Fleet.client_stats);
  let remote =
    Array.fold_left (fun a c -> a + c.Fleet.remote_requests) 0 r.Fleet.client_stats
  in
  chk_bool "shared file generates remote requests" true (remote > 0);
  chk_int "server sees every remote request" remote r.Fleet.server_requests;
  chk_bool "some server hits" true (r.Fleet.server_hits > 0);
  chk_bool "events counted" true (r.Fleet.events > 0);
  chk_bool "makespan positive" true (r.Fleet.makespan_s > 0.0);
  Array.iter
    (fun c ->
      chk_bool "client finished" true (c.Fleet.finish_s > 0.0);
      chk_bool "client finished within makespan" true
        (c.Fleet.finish_s <= r.Fleet.makespan_s))
    r.Fleet.client_stats

let test_no_fleet_rejected () =
  let scn = Scenario.make ~seed:0 ~cache_blocks:64 [ Scenario.workload "read60" ] in
  match Fleet.run ~jobs:1 scn with
  | _ -> Alcotest.fail "fleet run without a fleet section was not rejected"
  | exception Invalid_argument msg ->
    chk_bool "names the missing section" true (contains_sub ~sub:"fleet" msg)

let test_shared_files_bound () =
  let scn = small_fleet () in
  let fl = Option.get scn.Scenario.fleet in
  (* The two readN workloads provide two file slots; ask for three. *)
  let scn = { scn with Scenario.fleet = Some { fl with Scenario.shared_files = 3 } } in
  match Fleet.run ~jobs:1 scn with
  | _ -> Alcotest.fail "out-of-range shared_files was not rejected"
  | exception Invalid_argument msg ->
    chk_bool "names shared_files" true (contains_sub ~sub:"shared_files" msg)

(* {2 Observability} *)

let test_metrics_label () =
  check Alcotest.string "label rendering" "x{client=3,disk=0}"
    (Metrics.label "x" [ ("client", "3"); ("disk", "0") ]);
  check Alcotest.string "no labels, no braces" "x" (Metrics.label "x" [])

let test_fleet_gauges () =
  let sink = Obs.Sink.create ~backend:Obs.Sink.Null () in
  let r = Fleet.run ~jobs:2 ~obs:sink (small_fleet ()) in
  let m = Obs.Sink.metrics sink in
  let v name =
    match Metrics.gauge_value m name with
    | Some v -> v
    | None -> Alcotest.fail ("missing gauge " ^ name)
  in
  (* Per-client labelled instances… *)
  let per_client name field =
    Array.iteri
      (fun i c ->
        chk_float
          (Printf.sprintf "%s{client=%d}" name i)
          (float_of_int (field c))
          (v (Metrics.label name [ ("client", string_of_int i) ])))
      r.Fleet.client_stats
  in
  per_client "fleet.client.remote_requests" (fun c -> c.Fleet.remote_requests);
  per_client "fleet.client.hits" (fun c -> c.Fleet.local_hits);
  (* …and the roll-up equals their sum. *)
  let total field =
    float_of_int (Array.fold_left (fun a c -> a + field c) 0 r.Fleet.client_stats)
  in
  chk_float "roll-up sums the labelled family"
    (total (fun c -> c.Fleet.remote_requests))
    (v "fleet.client.remote_requests");
  chk_float "server request gauge"
    (float_of_int r.Fleet.server_requests)
    (v "fleet.server.requests");
  chk_float "server hit gauge"
    (float_of_int r.Fleet.server_hits)
    (v "fleet.server.hits")

(* {2 The $.fleet scenario section} *)

let test_fleet_roundtrip () =
  let scn = small_fleet () in
  (match Scenario.of_string (Scenario.to_string scn) with
  | Ok scn' -> chk_bool "of_string (to_string t) = t" true (scn = scn')
  | Error msg -> Alcotest.fail msg);
  chk_bool "hash is stable" true
    (String.equal (Scenario.hash scn) (Scenario.hash scn))

let test_no_fleet_serialises_without_fleet () =
  let scn = Scenario.make ~seed:0 ~cache_blocks:64 [ Scenario.workload "read60" ] in
  chk_bool "no fleet key for single-machine scenarios" false
    (contains_sub ~sub:"fleet" (Scenario.to_string scn))

(* Patch the canonical JSON textually and check the strict parser
   rejects it with the offending $.fleet path. *)
let replace ~sub ~by s =
  let n = String.length sub and m = String.length s in
  let rec go i =
    if i + n > m then Alcotest.fail (Printf.sprintf "pattern %S not found" sub)
    else if String.sub s i n = sub then
      String.sub s 0 i ^ by ^ String.sub s (i + n) (m - i - n)
    else go (i + 1)
  in
  go 0

let expect_error ~path json =
  match Scenario.of_string json with
  | Ok _ -> Alcotest.fail (Printf.sprintf "expected a %s error" path)
  | Error msg ->
    chk_bool (Printf.sprintf "error %S mentions %s" msg path) true
      (contains_sub ~sub:path msg)

let test_fleet_parse_errors () =
  let good = Scenario.to_string (small_fleet ()) in
  expect_error ~path:"$.fleet.clients" (replace ~sub:"\"clients\":4" ~by:"\"clients\":0" good);
  expect_error ~path:"$.fleet"
    (replace ~sub:"\"clients\":4" ~by:"\"clients\":4,\"bogus\":1" good);
  expect_error ~path:"$.fleet.network.latency_ms"
    (replace ~sub:"\"latency_ms\":2" ~by:"\"latency_ms\":0" good);
  expect_error ~path:"$.fleet.lookahead_ms"
    (replace ~sub:"\"network\"" ~by:"\"lookahead_ms\":100,\"network\"" good);
  expect_error ~path:"$.fleet.links"
    (replace ~sub:"\"network\""
       ~by:"\"links\":[{\"client\":9,\"latency_ms\":1,\"bandwidth_mb_per_s\":1}],\"network\""
       good);
  expect_error ~path:"$.fleet.server"
    (replace ~sub:"\"cache_blocks\":64" ~by:"\"cache_blocks\":0" good)

let suites =
  [
    ( "fleet/batch",
      [
        case "push/read/clear round-trip with growth" test_batch_roundtrip;
        qcheck_merge;
        case "merge drains the buffers" test_merge_clears;
      ] );
    ( "fleet/epoch",
      [
        case "boundaries and horizons" test_epoch_boundaries;
        case "index_of is the minimal covering epoch" test_epoch_index_of;
      ] );
    ( "fleet/determinism",
      [
        case "byte-identical at jobs 1/2/3/4" test_jobs_byte_identical;
        case "halved lookahead reproduces all statistics" test_halved_lookahead;
        case "report sanity" test_report_sanity;
        case "no fleet section rejected" test_no_fleet_rejected;
        case "shared_files beyond file slots rejected" test_shared_files_bound;
      ] );
    ( "fleet/obs",
      [
        case "label rendering" test_metrics_label;
        case "per-client gauges and roll-ups" test_fleet_gauges;
      ] );
    ( "fleet/scenario",
      [
        case "fleet section round-trips" test_fleet_roundtrip;
        case "single-machine JSON has no fleet key" test_no_fleet_serialises_without_fleet;
        case "strict parse errors carry $.fleet paths" test_fleet_parse_errors;
      ] );
  ]
