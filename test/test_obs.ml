(* The observability layer: JSON round-trips, trace backends, the
   metrics registry, and the trace-vs-counters regression that pins the
   instrumentation to the cache's own statistics. *)

open Tutil
module Obs = Acfc_obs
module Json = Acfc_obs.Json
module Trace = Acfc_obs.Trace
module Metrics = Acfc_obs.Metrics
module Sink = Acfc_obs.Sink
module Runner = Acfc_workload.Runner

let chk_str = check Alcotest.string

(* {2 Json} *)

let sample_json =
  Json.Obj
    [
      ("null", Json.Null);
      ("flag", Json.Bool true);
      ("int", Json.Num 1200.0);
      ("neg", Json.Num (-3.5));
      ("tiny", Json.Num 0.0068266666666666666);
      ("text", Json.Str "a \"quoted\" \\ line\nwith\ttabs");
      ("list", Json.List [ Json.Num 1.0; Json.Str "x"; Json.Bool false ]);
      ("nested", Json.Obj [ ("k", Json.Num 0.0) ]);
    ]

let json_round_trip () =
  match Json.of_string (Json.to_string sample_json) with
  | Ok v -> chk_bool "round-trips" true (Json.equal v sample_json)
  | Error e -> Alcotest.fail e

let json_integers_compact () =
  chk_str "int rendering" "1200" (Json.to_string (Json.Num 1200.0));
  chk_str "zero rendering" "0" (Json.to_string (Json.Num 0.0));
  chk_str "float rendering" "-3.5" (Json.to_string (Json.Num (-3.5)))

let json_accessors () =
  chk_bool "member" true (Json.member "flag" sample_json = Some (Json.Bool true));
  chk_bool "missing member" true (Json.member "nope" sample_json = None);
  chk_bool "to_int" true (Json.to_int (Json.Num 7.0) = Some 7);
  chk_bool "to_int non-integer" true (Json.to_int (Json.Num 7.5) = None);
  chk_bool "to_str" true (Json.to_str (Json.Str "s") = Some "s")

let json_rejects_garbage () =
  let bad = [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "\"unterminated"; "1 2" ] in
  List.iter
    (fun s ->
      match Json.of_string s with
      | Ok _ -> Alcotest.failf "accepted %S" s
      | Error _ -> ())
    bad

let json_float_round_trip =
  qcheck ~count:500 "json float round-trip" QCheck2.Gen.float (fun f ->
      let f = if Float.is_nan f || Float.is_integer f then 0.5 else f in
      match Json.of_string (Json.to_string (Json.Num f)) with
      | Ok (Json.Num g) -> Float.equal f g
      | Ok _ | Error _ -> false)

(* {2 Trace events} *)

let b ~file ~index = { Trace.file; index }

(* One value per constructor, exercising every field. *)
let all_events =
  [
    Trace.Cache_hit { pid = 1; block = b ~file:2 ~index:3 };
    Trace.Cache_miss { pid = 0; block = b ~file:1 ~index:9; prefetch = true };
    Trace.Evict
      {
        victim = b ~file:0 ~index:1;
        owner = 2;
        candidate = b ~file:0 ~index:7;
        policy = "lru-sp";
        reason = "capacity";
      };
    Trace.Writeback { block = b ~file:4 ~index:4 };
    Trace.Swap { kept = b ~file:1 ~index:2; victim = b ~file:3 ~index:4 };
    Trace.Placeholder_created
      { replaced = b ~file:0 ~index:5; target = b ~file:0 ~index:6; chooser = 1 };
    Trace.Placeholder_hit
      { missing = b ~file:0 ~index:5; target = b ~file:0 ~index:6; chooser = 1 };
    Trace.Manager_revoked { pid = 3 };
    Trace.Disk_io
      {
        disk = "RZ56";
        kind = "read";
        addr = 1042;
        blocks = 2;
        seek = 0.0155;
        rot = 0.0068266666666666666;
        xfer = 0.00833;
        wait = 0.0;
      };
    Trace.Syscall { pid = 0; op = "read"; detail = "file=3 off=0 len=8192" };
    Trace.Fiber { name = "read100"; op = "spawn" };
  ]

let trace_json_round_trip () =
  List.iteri
    (fun i ev ->
      let r = { Trace.time = 0.25 +. float_of_int i; ev } in
      match Trace.of_json (Trace.to_json r) with
      | Ok r' -> chk_bool (Trace.kind ev ^ " round-trips") true (r' = r)
      | Error e -> Alcotest.failf "%s: %s" (Trace.kind ev) e)
    all_events

let trace_kinds_stable () =
  chk_str "kinds" "cache_hit cache_miss evict writeback swap placeholder_created \
                   placeholder_hit manager_revoked disk_io syscall fiber"
    (String.concat " " (List.map Trace.kind all_events))

let trace_csv_columns () =
  let columns s = List.length (String.split_on_char ',' s) in
  let width = columns Trace.csv_header in
  List.iter
    (fun ev ->
      let row = Trace.to_csv { Trace.time = 1.0; ev } in
      chk_int (Trace.kind ev ^ " csv width") width (columns row))
    all_events

(* {2 Sink backends} *)

let jsonl_backend_round_trip () =
  let path = Filename.temp_file "acfc_obs" ".jsonl" in
  let oc = open_out path in
  let sink = Sink.create ~clock:(fun () -> 1.5) ~backend:(Sink.Jsonl oc) () in
  List.iter (Sink.emit sink) all_events;
  Sink.flush sink;
  close_out oc;
  let ic = open_in path in
  let lines = ref [] in
  (try
     while true do
       lines := input_line ic :: !lines
     done
   with End_of_file -> ());
  close_in ic;
  Sys.remove path;
  let lines = List.rev !lines in
  chk_int "emitted" (List.length all_events) (Sink.emitted sink);
  chk_int "lines" (List.length all_events) (List.length lines);
  List.iter2
    (fun ev line ->
      match Result.bind (Json.of_string line) Trace.of_json with
      | Ok r ->
        chk_bool (Trace.kind ev ^ " parsed back") true
          (r.Trace.ev = ev && r.Trace.time = 1.5)
      | Error e -> Alcotest.fail e)
    all_events lines

let csv_backend_writes_header () =
  let path = Filename.temp_file "acfc_obs" ".csv" in
  let oc = open_out path in
  let sink = Sink.create ~backend:(Sink.Csv oc) () in
  List.iter (Sink.emit sink) all_events;
  Sink.flush sink;
  close_out oc;
  let ic = open_in path in
  let header = input_line ic in
  let rows = ref 0 in
  (try
     while true do
       ignore (input_line ic);
       incr rows
     done
   with End_of_file -> ());
  close_in ic;
  Sys.remove path;
  chk_str "header" Trace.csv_header header;
  chk_int "rows" (List.length all_events) !rows

let ring_keeps_last_n () =
  let sink = Sink.create ~backend:(Sink.Ring 4) () in
  for i = 0 to 9 do
    Sink.emit sink (Trace.Fiber { name = string_of_int i; op = "spawn" })
  done;
  chk_int "emitted counts all" 10 (Sink.emitted sink);
  let names =
    List.map
      (fun r ->
        match r.Trace.ev with Trace.Fiber { name; _ } -> name | _ -> "?")
      (Sink.ring_contents sink)
  in
  chk_bool "last four, oldest first" true (names = [ "6"; "7"; "8"; "9" ])

(* {2 Metrics} *)

let metrics_counters_and_gauges () =
  let m = Metrics.create () in
  let c = Metrics.counter m "reads" in
  Metrics.incr c;
  Metrics.incr ~by:4 c;
  (* Creation is idempotent: same name, same counter. *)
  Metrics.incr (Metrics.counter m "reads");
  chk_int "counter value" 6 (Metrics.counter_value m "reads");
  chk_int "absent counter" 0 (Metrics.counter_value m "nope");
  let level = ref 3.0 in
  Metrics.gauge m "level" (fun () -> !level);
  chk_bool "gauge sampled" true (Metrics.gauge_value m "level" = Some 3.0);
  level := 4.0;
  chk_bool "gauge tracks" true (Metrics.gauge_value m "level" = Some 4.0);
  let h = Metrics.histogram m "lat" in
  Metrics.observe h 0.001;
  Metrics.observe h 0.002;
  chk_int "histogram count" 2 (Metrics.histogram_count m "lat");
  Metrics.reset m;
  chk_int "reset zeroes counters" 0 (Metrics.counter_value m "reads");
  chk_int "reset zeroes histograms" 0 (Metrics.histogram_count m "lat");
  chk_bool "reset keeps gauges" true (Metrics.gauge_value m "level" = Some 4.0)

let snapshot_shape () =
  let m = Metrics.create () in
  Metrics.incr ~by:2 (Metrics.counter m "b");
  Metrics.incr (Metrics.counter m "a");
  Metrics.gauge m "g" (fun () -> 1.5);
  Metrics.observe (Metrics.histogram m "h") 0.5;
  let s = Metrics.snapshot m ~now:10.0 in
  chk_bool "now" true (Json.member "now" s = Some (Json.Num 10.0));
  (match Json.member "counters" s with
  | Some (Json.Obj kvs) ->
    chk_bool "counters sorted" true (List.map fst kvs = [ "a"; "b" ])
  | _ -> Alcotest.fail "no counters section");
  match Option.bind (Json.member "histograms" s) (Json.member "h") with
  | Some h ->
    chk_bool "histogram count field" true (Json.member "count" h = Some (Json.Num 1.0));
    chk_bool "histogram sum field" true (Json.member "sum" h = Some (Json.Num 0.5))
  | None -> Alcotest.fail "no histogram section"

(* {2 A full instrumented run} *)

let readn_spec () =
  Runner.Spec.make ~smart:false
    (Acfc_workload.Readn.app ~n:20 ~mode:`Oblivious ())

(* Metrics snapshots are byte-identical across runs with the same
   seed: sorted names plus a deterministic simulation. *)
let snapshot_deterministic () =
  let snapshot_of_run () =
    let sink = Sink.create () in
    ignore
      (Acfc_scenario.Scenario.run_specs ~seed:7 ~obs:sink ~cache_blocks:256
         ~alloc_policy:Acfc_core.Config.Lru_sp [ readn_spec () ]);
    Json.to_string (Metrics.snapshot (Sink.metrics sink) ~now:(Sink.now sink))
  in
  chk_str "same seed, same snapshot" (snapshot_of_run ()) (snapshot_of_run ())

(* The regression the issue asks for: miss events in the trace agree
   with the cache's own counters, in total and per application. *)
let traced_misses_match_counters () =
  let per_pid = Hashtbl.create 8 in
  let total = ref 0 in
  let backend =
    Sink.Custom
      (fun r ->
        match r.Trace.ev with
        | Trace.Cache_miss { pid; _ } ->
          incr total;
          Hashtbl.replace per_pid pid
            (1 + Option.value ~default:0 (Hashtbl.find_opt per_pid pid))
        | _ -> ())
  in
  let sink = Sink.create ~backend () in
  let result =
    Acfc_scenario.Scenario.run_specs ~seed:0 ~obs:sink ~cache_blocks:256
      ~alloc_policy:Acfc_core.Config.Lru_sp
      [ readn_spec (); readn_spec () ]
  in
  chk_bool "workload missed at all" true (!total > 0);
  chk_int "traced misses = cache counter" result.Runner.cache_misses !total;
  List.iter
    (fun a ->
      chk_int
        ("per-app misses, pid " ^ string_of_int (Acfc_core.Pid.to_int a.Runner.pid))
        a.Runner.cache_misses
        (Option.value ~default:0
           (Hashtbl.find_opt per_pid (Acfc_core.Pid.to_int a.Runner.pid))))
    result.Runner.apps;
  (* The registered gauges agree too. *)
  chk_bool "cache.misses gauge" true
    (Metrics.gauge_value (Sink.metrics sink) "cache.misses"
    = Some (float_of_int result.Runner.cache_misses))

let suites =
  [
    ( "obs/json",
      [
        case "round-trip" json_round_trip;
        case "integer rendering" json_integers_compact;
        case "accessors" json_accessors;
        case "rejects garbage" json_rejects_garbage;
        json_float_round_trip;
      ] );
    ( "obs/trace",
      [
        case "every event round-trips" trace_json_round_trip;
        case "kinds are stable" trace_kinds_stable;
        case "csv column counts" trace_csv_columns;
        case "jsonl backend" jsonl_backend_round_trip;
        case "csv backend" csv_backend_writes_header;
        case "ring keeps last n" ring_keeps_last_n;
      ] );
    ( "obs/metrics",
      [
        case "counters, gauges, histograms" metrics_counters_and_gauges;
        case "snapshot shape" snapshot_shape;
      ] );
    ( "obs/regression",
      [
        case "snapshot deterministic" snapshot_deterministic;
        case "traced misses match counters" traced_misses_match_counters;
      ] );
  ]
