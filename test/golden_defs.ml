(* The exact computations pinned by the golden snapshots under
   test/golden/. Shared by gen_golden.exe (which writes the snapshots)
   and test_golden.ml (which asserts the live system still reproduces
   them byte-for-byte), so the two can never drift apart. *)

open Acfc_experiments
module Obs = Acfc_obs
module Runner = Acfc_workload.Runner

let fig5 ~jobs () =
  Format.asprintf "%a" Multi.print
    (Multi.run ~jobs ~runs:2 ~sizes:[ 6.4 ] ~combos:[ [ "cs3"; "ldk" ] ] ())

let fig6 ~jobs () =
  Format.asprintf "%a" Alloc_lru.print
    (Alloc_lru.run ~jobs ~runs:2 ~sizes:[ 6.4 ] ~combos:[ [ "cs2"; "gli" ] ] ())

let criteria ~jobs () =
  Format.asprintf "%a" Criteria.print (Criteria.criterion3 ~jobs ~runs:1 ~apps:[ "din" ] ())

let metrics () =
  let sink = Obs.Sink.create ~backend:Obs.Sink.Null () in
  ignore
    (Acfc_scenario.Scenario.run_specs ~seed:7 ~obs:sink ~cache_blocks:128
       ~alloc_policy:Acfc_core.Config.Lru_sp
       [
         Runner.Spec.make ~smart:false ~disk:0
           (Acfc_workload.Readn.app ~n:60 ~mode:`Oblivious ());
       ]);
  Obs.Json.to_string
    (Obs.Metrics.snapshot (Obs.Sink.metrics sink) ~now:(Obs.Sink.now sink))
  ^ "\n"

(* The committed examples/scenarios/fleet_small.json: four client
   machines, two oblivious readN workloads each, the first one's file
   server-backed, over a 2 ms link. Small enough that the golden run is
   instant, busy enough that every path (local hit, local disk, server
   hit, server drive queue) is exercised. *)
let fleet_small () =
  Acfc_scenario.Scenario.make ~seed:11 ~cache_blocks:96
    ~fleet:
      (Acfc_scenario.Scenario.fleet ~shared_files:1 ~clients:4
         ~server_cache_blocks:64 ~latency_ms:2.0 ~bandwidth_mb_per_s:20.0 ())
    [
      Acfc_scenario.Scenario.workload ~smart:false ~disk:0 "read120";
      Acfc_scenario.Scenario.workload ~smart:false ~disk:0 "read80";
    ]

let fleet ~jobs () =
  Acfc_fleet.Fleet.to_string (Acfc_fleet.Fleet.run ~jobs (fleet_small ()))

(* The committed examples/scenarios/adaptive_arc.json: ARC installed as
   the first workload's live replacement manager through the unified
   policy core, next to an unmanaged workload sharing the cache. The
   golden pins the CLI output of `acfc-run scenario` on it, so the
   whole plug-in decision path (Control -> Acm -> Policy_core) is
   byte-stable. *)
let adaptive_arc_small () =
  Acfc_scenario.Scenario.make ~seed:13 ~cache_blocks:96
    [
      Acfc_scenario.Scenario.workload ~smart:false ~disk:0 ~manager:"arc"
        "read120";
      Acfc_scenario.Scenario.workload ~smart:false ~disk:0 "read80";
    ]

(* Byte-for-byte the output of [execute_scenario] in bin/acfc_run.ml. *)
let adaptive_arc () =
  let result = Acfc_scenario.Scenario.run (adaptive_arc_small ()) in
  Format.asprintf "%a" Runner.pp result
  ^ Format.asprintf
      "cache: %d hits, %d misses; %d overrules, %d placeholders (%d used)@."
      result.Runner.cache_hits result.Runner.cache_misses
      result.Runner.overrules result.Runner.placeholders_created
      result.Runner.placeholders_used

let snapshots ~jobs =
  [
    ("fig5_cs3_ldk.txt", fig5 ~jobs);
    ("fig6_cs2_gli.txt", fig6 ~jobs);
    ("criteria3_din.txt", criteria ~jobs);
    ("metrics_readn.json", fun () -> metrics ());
    ("fleet_small.txt", fleet ~jobs);
    ("adaptive_arc.txt", fun () -> adaptive_arc ());
  ]
