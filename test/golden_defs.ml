(* The exact computations pinned by the golden snapshots under
   test/golden/. Shared by gen_golden.exe (which writes the snapshots)
   and test_golden.ml (which asserts the live system still reproduces
   them byte-for-byte), so the two can never drift apart. *)

open Acfc_experiments
module Obs = Acfc_obs
module Runner = Acfc_workload.Runner

let fig5 ~jobs () =
  Format.asprintf "%a" Multi.print
    (Multi.run ~jobs ~runs:2 ~sizes:[ 6.4 ] ~combos:[ [ "cs3"; "ldk" ] ] ())

let fig6 ~jobs () =
  Format.asprintf "%a" Alloc_lru.print
    (Alloc_lru.run ~jobs ~runs:2 ~sizes:[ 6.4 ] ~combos:[ [ "cs2"; "gli" ] ] ())

let criteria ~jobs () =
  Format.asprintf "%a" Criteria.print (Criteria.criterion3 ~jobs ~runs:1 ~apps:[ "din" ] ())

let metrics () =
  let sink = Obs.Sink.create ~backend:Obs.Sink.Null () in
  ignore
    (Acfc_scenario.Scenario.run_specs ~seed:7 ~obs:sink ~cache_blocks:128
       ~alloc_policy:Acfc_core.Config.Lru_sp
       [
         Runner.Spec.make ~smart:false ~disk:0
           (Acfc_workload.Readn.app ~n:60 ~mode:`Oblivious ());
       ]);
  Obs.Json.to_string
    (Obs.Metrics.snapshot (Obs.Sink.metrics sink) ~now:(Obs.Sink.now sink))
  ^ "\n"

let snapshots ~jobs =
  [
    ("fig5_cs3_ldk.txt", fig5 ~jobs);
    ("fig6_cs2_gli.txt", fig6 ~jobs);
    ("criteria3_din.txt", criteria ~jobs);
    ("metrics_readn.json", fun () -> metrics ());
  ]
