(* End-to-end regression locks: the headline reproduction numbers are
   deterministic given the seed, so they are pinned exactly. If a change
   moves one of these, EXPERIMENTS.md needs regenerating. *)

open Acfc_workload
module Config = Acfc_core.Config
module Cache = Acfc_core.Cache
module Engine = Acfc_sim.Engine
module Ivar = Acfc_sim.Ivar
module Disk = Acfc_disk.Disk
module Params = Acfc_disk.Params
module Fs = Acfc_fs.Fs
open Tutil

let run_one ?(policy = Config.Lru_sp) ?(smart = true) ?(cache_mb = 6.4) ?(disk = 0) app
    =
  let r =
    Acfc_scenario.Scenario.run_specs ~seed:0
      ~cache_blocks:(Runner.blocks_of_mb cache_mb)
      ~alloc_policy:policy
      [ Runner.Spec.make ~smart ~disk app ]
  in
  List.hd r.Runner.apps

let din_headline () =
  let orig = run_one ~policy:Config.Global_lru ~smart:false Dinero.din in
  let sp = run_one Dinero.din in
  chk_int "original I/Os" 9216 orig.Runner.block_ios;
  chk_int "LRU-SP I/Os" 2664 sp.Runner.block_ios;
  (* Elapsed within a second of the paper's 117 s / 106 s. *)
  chk_bool "original elapsed ~117s" true (Float.abs (orig.Runner.elapsed -. 117.2) < 1.0);
  chk_bool "LRU-SP elapsed ~104s" true (Float.abs (sp.Runner.elapsed -. 104.0) < 1.0)

let cs1_headline () =
  let orig = run_one ~policy:Config.Global_lru ~smart:false Cscope.cs1 in
  let sp = run_one Cscope.cs1 in
  chk_int "original I/Os" 9128 orig.Runner.block_ios;
  chk_int "LRU-SP I/Os" 3395 sp.Runner.block_ios

let din_at_8mb_converges () =
  (* Once the trace fits, both kernels see compulsory misses only. *)
  let orig = run_one ~policy:Config.Global_lru ~smart:false ~cache_mb:8.0 Dinero.din in
  let sp = run_one ~cache_mb:8.0 Dinero.din in
  chk_int "original compulsory" 1024 orig.Runner.block_ios;
  chk_int "LRU-SP compulsory" 1024 sp.Runner.block_ios

let clock_sp_same_headline () =
  let sp = run_one ~policy:Config.Clock_sp Dinero.din in
  chk_int "Clock-SP matches LRU-SP" 2664 sp.Runner.block_ios

(* {2 Concurrency mechanics through the full stack} *)

let bb = Params.block_bytes

let concurrent_misses_coalesce () =
  in_sim (fun engine ->
      let disk = Disk.create engine Params.rz56 in
      let fs = Fs.create engine ~config:(config 16) ~readahead:false () in
      let file = Fs.create_file fs ~name:"shared" ~disk ~size_bytes:(4 * bb) () in
      let done1 = Ivar.create engine and done2 = Ivar.create engine in
      (* Two processes demand the same uncached block at the same time:
         one disk read must serve both. *)
      Engine.spawn engine (fun () ->
          Fs.read fs ~pid:(pid 1) file ~off:0 ~len:bb;
          Ivar.fill done1 (Engine.now engine));
      Engine.spawn engine (fun () ->
          Fs.read fs ~pid:(pid 2) file ~off:0 ~len:bb;
          Ivar.fill done2 (Engine.now engine));
      let t1 = Ivar.read done1 and t2 = Ivar.read done2 in
      chk_int "one disk read total" 1
        (Fs.pid_disk_reads fs (pid 1) + Fs.pid_disk_reads fs (pid 2));
      (* The coalesced waiter finishes with (not before) the I/O; only
         per-block CPU charges (~2.6 ms) separate the two completions,
         far below the ~14 ms the disk service costs. *)
      chk_bool "both waited for the same I/O" true (Float.abs (t1 -. t2) < 0.005))

let inflight_block_never_evicted () =
  in_sim (fun engine ->
      let disk = Disk.create engine Params.rz56 in
      (* Cache of 2: process B floods it while process A's read of block
         0 is still on the (slow, queued) disk. The in-flight block must
         survive until A consumes it: exactly one read of block 0. *)
      let fs = Fs.create engine ~config:(config 2) ~readahead:false () in
      let file = Fs.create_file fs ~name:"f" ~disk ~size_bytes:(16 * bb) () in
      Engine.spawn engine (fun () -> Fs.read fs ~pid:(pid 1) file ~off:0 ~len:bb);
      Engine.spawn engine (fun () ->
          for i = 1 to 15 do
            Fs.read fs ~pid:(pid 2) file ~off:(i * bb) ~len:1
          done);
      Engine.run engine;
      chk_int "block 0 read exactly once" 1 (Fs.pid_disk_reads fs (pid 1));
      Cache.check_invariants (Fs.cache fs))

let cache_busy_when_everything_pinned () =
  (* A 1-block cache with a backend whose read re-enters the cache: the
     only frame is pinned by the outer miss, so the inner miss cannot
     find a victim. *)
  let cache = ref None in
  let inner_result = ref `Unset in
  let backend =
    {
      Acfc_core.Backend.read_block =
        (fun key ->
          if Acfc_core.Block.index key = 0 then (
            match Cache.read (Option.get !cache) ~pid:(pid 0) (blk 1) with
            | _ -> inner_result := `Returned
            | exception Cache.Cache_busy -> inner_result := `Busy));
      write_block = ignore;
      evicted = ignore;
    }
  in
  let c = Cache.create ~backend (config 1) in
  cache := Some c;
  ignore (Cache.read c ~pid:(pid 0) (blk 0));
  chk_bool "inner miss hit Cache_busy" true (!inner_result = `Busy)

let mix_with_recorder () =
  (* Tracers compose with full concurrent runs. *)
  let recorder = Acfc_replacement.Recorder.create () in
  let r =
    Acfc_scenario.Scenario.run_specs ~seed:0 ~cache_blocks:819 ~alloc_policy:Config.Lru_sp
      ~tracer:(Acfc_replacement.Recorder.tracer recorder)
      [
        Runner.Spec.make ~smart:true ~disk:0 Dinero.din;
        Runner.Spec.make ~smart:false ~disk:0 (Readn.app ~n:300 ~mode:`Oblivious ());
      ]
  in
  let din_trace = Acfc_replacement.Recorder.to_trace ~pid:(pid 0) recorder in
  chk_int "din's demand references" 9216 (Array.length din_trace);
  let readn_trace = Acfc_replacement.Recorder.to_trace ~pid:(pid 1) recorder in
  chk_int "readn's demand references" 6000 (Array.length readn_trace);
  chk_bool "run completed" true (r.Runner.makespan > 0.0)

let pp_smoke () =
  (* Printers over live values must not raise. *)
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  Format.fprintf ppf "%a %a %a %a" Acfc_core.Block.pp (blk 3) Acfc_core.Pid.pp (pid 1)
    Acfc_core.Policy.pp Acfc_core.Policy.Mru Params.pp Params.rz56;
  let e = Acfc_core.Entry.make ~key:(blk 1) ~owner:(pid 0) in
  Format.fprintf ppf "%a" Acfc_core.Entry.pp e;
  List.iter
    (fun ev -> Format.fprintf ppf "%a" Acfc_core.Event.pp ev)
    [
      Acfc_core.Event.Hit { pid = pid 0; block = blk 0 };
      Acfc_core.Event.Miss { pid = pid 0; block = blk 0; prefetch = true };
      Acfc_core.Event.Writeback (blk 2);
      Acfc_core.Event.Manager_revoked (pid 3);
    ];
  Format.pp_print_flush ppf ();
  chk_bool "printers produce text" true (Buffer.length buf > 0)

let suites =
  [
    ( "integration",
      [
        case "din headline numbers" din_headline;
        case "cs1 headline numbers" cs1_headline;
        case "din converges at 8MB" din_at_8mb_converges;
        case "Clock-SP same headline" clock_sp_same_headline;
        case "concurrent misses coalesce" concurrent_misses_coalesce;
        case "in-flight block never evicted" inflight_block_never_evicted;
        case "Cache_busy when all pinned" cache_busy_when_everything_pinned;
        case "recorder composes with mixes" mix_with_recorder;
        case "printer smoke" pp_smoke;
      ] );
  ]
