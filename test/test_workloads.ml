open Acfc_workload
module Config = Acfc_core.Config
module Scenario = Acfc_scenario.Scenario
open Tutil

(* A cache far larger than any working set: every run shows only its
   compulsory I/Os. *)
let huge = 16384

let run_app ?(cache_blocks = huge) ?(alloc_policy = Config.Global_lru) ?(smart = false)
    ?(seed = 0) ?(disk = 0) app =
  let r =
    Scenario.run_specs ~seed ~cache_blocks ~alloc_policy
      [ Runner.Spec.make ~smart ~disk app ]
  in
  List.hd r.Runner.apps

let compulsory_io name app disk expected () =
  let a = run_app ~disk app in
  chk_int (name ^ " compulsory I/Os") expected a.Runner.block_ios

(* Expected compulsory footprints (reads + writes with an infinite
   cache): documented in each workload module. *)
let compulsory_cases =
  [
    (* din: one 1024-block trace file, read once, no writes. *)
    ("din", Dinero.din, 0, 1024);
    (* cs1: 1141-block database. *)
    ("cs1", Cscope.cs1, 0, 1141);
    (* cs2: 47 x 50-block sources. *)
    ("cs2", Cscope.cs2, 0, 2350);
    (* cs3: 36 x 48-block sources. *)
    ("cs3", Cscope.cs3, 0, 1728);
    (* gli: 256 index blocks + all 64 x 80 partitions appear across the
       five query subsets. *)
    ("gli", Glimpse.gli, 0, 256 + (64 * 80));
    (* ldk: 80 x 40 object blocks read + 1024 output blocks written. *)
    ("ldk", Ld.ldk, 0, (80 * 40) + 1024);
  ]

let sort_compulsory () =
  (* Even with an infinite cache, temporaries written then deleted may
     or may not reach the disk depending on the 30 s update daemon, so
     only bounds are meaningful: at least input reads + final output
       writes; at most every read and write hitting the device. *)
  let a = run_app ~disk:1 Sort_app.sort in
  chk_bool "sort lower bound" true (a.Runner.block_ios >= 2176 + 2176);
  chk_bool "sort upper bound" true (a.Runner.block_ios <= 12800)

let pjn_bounds () =
  let a = run_app ~disk:1 Postgres.pjn in
  (* Outer + index compulsory, plus at most one data block per probe. *)
  chk_bool "pjn lower bound" true (a.Runner.block_ios >= 410 + 640);
  chk_bool "pjn upper bound" true (a.Runner.block_ios <= 410 + 640 + 4096)

let readn_compulsory () =
  let a = run_app (Readn.app ~n:300 ~mode:`Oblivious ()) in
  chk_int "readn compulsory" 1200 a.Runner.block_ios;
  let a = run_app (Readn.app ~file_blocks:700 ~n:200 ~mode:`Oblivious ()) in
  chk_int "partial final group" 700 a.Runner.block_ios

(* The paper's criterion 3: smart processes never do worse. Allow 3%
   slack for boundary effects. *)
let smart_never_worse name app disk () =
  List.iter
    (fun mb ->
      let cache_blocks = Runner.blocks_of_mb mb in
      let oblivious =
        (run_app ~cache_blocks ~alloc_policy:Config.Global_lru ~smart:false ~disk app)
          .Runner.block_ios
      in
      let smart =
        (run_app ~cache_blocks ~alloc_policy:Config.Lru_sp ~smart:true ~disk app)
          .Runner.block_ios
      in
      chk_bool
        (Printf.sprintf "%s smart(%d) <= oblivious(%d) at %gMB" name smart oblivious mb)
        true
        (float_of_int smart <= 1.03 *. float_of_int oblivious))
    [ 6.4; 16.0 ]

let determinism () =
  let go () =
    let r =
      Scenario.run_specs ~seed:7 ~cache_blocks:819 ~alloc_policy:Config.Lru_sp
        [
          Runner.Spec.make ~smart:true ~disk:0 Dinero.din;
          Runner.Spec.make ~smart:false ~disk:0 (Readn.app ~n:300 ~mode:`Oblivious ());
        ]
    in
    List.map (fun a -> (a.Runner.elapsed, a.Runner.block_ios)) r.Runner.apps
  in
  chk_bool "same seed, same result" true (go () = go ())

let seed_changes_timing () =
  let elapsed seed =
    (run_app ~cache_blocks:819 ~seed ~disk:1 Postgres.pjn).Runner.elapsed
  in
  chk_bool "different seeds differ" true (elapsed 0 <> elapsed 1)

let runner_validation () =
  Alcotest.check_raises "no apps" (Invalid_argument "Scenario.run: no applications")
    (fun () ->
      ignore (Scenario.run_specs ~cache_blocks:10 ~alloc_policy:Config.Global_lru []));
  Alcotest.check_raises "bad disk"
    (Invalid_argument "Scenario.run: disk index out of range") (fun () ->
      ignore
        (Scenario.run_specs ~cache_blocks:10 ~alloc_policy:Config.Global_lru
           [ Runner.Spec.make ~disk:5 Dinero.din ]))

let blocks_of_mb () =
  chk_int "6.4MB = 819 blocks (paper)" 819 (Runner.blocks_of_mb 6.4);
  chk_int "8MB" 1024 (Runner.blocks_of_mb 8.0);
  chk_int "16MB" 2048 (Runner.blocks_of_mb 16.0)

let din_mru_effect () =
  (* The reproduction of the paper's headline din number. *)
  let orig =
    (run_app ~cache_blocks:819 ~alloc_policy:Config.Global_lru Dinero.din)
      .Runner.block_ios
  in
  let sp =
    (run_app ~cache_blocks:819 ~alloc_policy:Config.Lru_sp ~smart:true Dinero.din)
      .Runner.block_ios
  in
  chk_int "original thrashes every pass" 9216 orig;
  chk_bool "LRU-SP near the paper's 2573" true (sp > 2200 && sp < 3000)

let foolish_hurts_itself () =
  let oblivious =
    run_app ~cache_blocks:819 (Readn.app ~n:300 ~mode:`Oblivious ())
  in
  let foolish =
    run_app ~cache_blocks:819 ~alloc_policy:Config.Lru_sp ~smart:true
      (Readn.app ~n:300 ~mode:`Foolish ())
  in
  chk_bool "MRU is foolish for grouped re-reads" true
    (foolish.Runner.block_ios > oblivious.Runner.block_ios)

let elapsed_positive_and_ordered () =
  let r =
    Scenario.run_specs ~cache_blocks:819 ~alloc_policy:Config.Global_lru
      [
        Runner.Spec.make ~smart:false ~disk:0 Cscope.cs1;
        Runner.Spec.make ~smart:false ~disk:1 Postgres.pjn;
      ]
  in
  List.iter
    (fun a -> chk_bool (a.Runner.app_name ^ " elapsed positive") true (a.Runner.elapsed > 0.0))
    r.Runner.apps;
  chk_bool "makespan is the max" true
    (r.Runner.makespan
    = List.fold_left (fun m a -> Float.max m a.Runner.elapsed) 0.0 r.Runner.apps);
  chk_bool "cache stats counted" true (r.Runner.cache_misses > 0)

let app_categories () =
  List.iter
    (fun (app : App.t) ->
      chk_bool (app.App.name ^ " has a category") true (String.length app.App.category > 0))
    [ Dinero.din; Cscope.cs1; Cscope.cs2; Cscope.cs3; Glimpse.gli; Ld.ldk;
      Postgres.pjn; Sort_app.sort ]

let readn_validation () =
  Alcotest.check_raises "bad n" (Invalid_argument "Readn.app: sizes must be positive")
    (fun () -> ignore (Readn.app ~n:0 ~mode:`Oblivious ()))

let suites =
  [
    ( "workloads: compulsory footprints",
      List.map
        (fun (name, app, disk, expected) ->
          case (name ^ " compulsory") (compulsory_io name app disk expected))
        compulsory_cases
      @ [
          case "sort bounds" sort_compulsory;
          case "pjn bounds" pjn_bounds;
          case "readn compulsory" readn_compulsory;
        ] );
    ( "workloads: criteria",
      [
        case "din: smart never worse" (smart_never_worse "din" Dinero.din 0);
        case "cs1: smart never worse" (smart_never_worse "cs1" Cscope.cs1 0);
        case "cs2: smart never worse" (smart_never_worse "cs2" Cscope.cs2 0);
        case "cs3: smart never worse" (smart_never_worse "cs3" Cscope.cs3 0);
        case "gli: smart never worse" (smart_never_worse "gli" Glimpse.gli 0);
        case "ldk: smart never worse" (smart_never_worse "ldk" Ld.ldk 0);
        case "pjn: smart never worse" (smart_never_worse "pjn" Postgres.pjn 1);
        case "sort: smart never worse" (smart_never_worse "sort" Sort_app.sort 1);
        case "din MRU effect" din_mru_effect;
        case "foolish MRU hurts itself" foolish_hurts_itself;
      ] );
    ( "workloads: runner",
      [
        case "determinism" determinism;
        case "seeds change timing" seed_changes_timing;
        case "validation" runner_validation;
        case "blocks_of_mb" blocks_of_mb;
        case "elapsed and makespan" elapsed_positive_and_ordered;
        case "categories" app_categories;
        case "readn validation" readn_validation;
      ] );
  ]
