(* The domain pool (acfc.par): ordering, failure propagation, nesting
   rejection, and the contract the experiment layer rests on — the same
   seeds give byte-identical results at every [jobs] value. *)

open Tutil
module Pool = Acfc_par.Pool
module Runner = Acfc_workload.Runner
module Obs = Acfc_obs
open Acfc_experiments

(* Unequal amounts of work per element, so that with several workers the
   completion order differs from the submission order. *)
let slow_square x =
  let acc = ref 0 in
  for i = 1 to (x mod 5) * 10_000 do
    acc := !acc + i
  done;
  ignore (Sys.opaque_identity !acc);
  x * x

let test_map_order () =
  let xs = List.init 24 Fun.id in
  let expected = List.map slow_square xs in
  List.iter
    (fun jobs ->
      check
        Alcotest.(list int)
        (Printf.sprintf "map ~jobs:%d preserves input order" jobs)
        expected
        (Pool.map ~jobs slow_square xs))
    [ 1; 2; 4 ]

let test_run_list () =
  let tasks = List.init 9 (fun i () -> slow_square i) in
  check
    Alcotest.(list int)
    "run_list matches direct application"
    (List.map (fun task -> task ()) tasks)
    (Pool.run_list ~jobs:3 tasks)

let test_async_await () =
  Pool.with_pool ~jobs:3 @@ fun pool ->
  let futures = List.init 8 (fun i -> Pool.async pool (fun () -> slow_square i)) in
  (* Await out of submission order; results must not care. *)
  List.iteri
    (fun i future -> chk_int "await out of order" (slow_square (7 - i)) (Pool.await pool future))
    (List.rev futures);
  (* Awaiting a settled future again returns the same value. *)
  chk_int "second await" 49 (Pool.await pool (List.nth futures 7))

exception Boom of int

let test_exception_propagation () =
  List.iter
    (fun jobs ->
      let completed = Atomic.make 0 in
      (match
         Pool.map ~jobs
           (fun i ->
             if i mod 3 = 1 then raise (Boom i)
             else begin
               Atomic.incr completed;
               i
             end)
           (List.init 12 Fun.id)
       with
      | _ -> Alcotest.fail "expected Boom"
      | exception Boom i -> chk_int "first failure in input order" 1 i);
      (* At jobs=1 the sequential path stops at the first raise (tasks
         0 only); a real pool drains every task before re-raising. *)
      if jobs > 1 then chk_int "pool drained before re-raise" 8 (Atomic.get completed))
    [ 1; 4 ]

let test_nested_rejected () =
  List.iter
    (fun jobs ->
      match Pool.map ~jobs (fun () -> Pool.run_list ~jobs:1 [ (fun () -> 0) ]) [ () ] with
      | _ -> Alcotest.fail "nested pool use was not rejected"
      | exception Pool.Nested -> ())
    [ 1; 2 ]

let test_async_nested_rejected () =
  Pool.with_pool ~jobs:2 @@ fun pool ->
  let future = Pool.async pool (fun () -> Pool.map ~jobs:1 (fun x -> x) [ 1 ]) in
  match Pool.await pool future with
  | _ -> Alcotest.fail "nested pool use was not rejected"
  | exception Pool.Nested -> ()

(* {2 Team: pinned worker domains and the reusable barrier} *)

module Team = Acfc_par.Team

let test_team_rounds () =
  List.iter
    (fun workers ->
      Team.with_team ~workers @@ fun team ->
      let counters = Array.make workers 0 in
      for _ = 1 to 50 do
        Team.run team (fun wid -> counters.(wid) <- counters.(wid) + 1)
      done;
      Array.iteri
        (fun i c ->
          chk_int
            (Printf.sprintf "worker %d of %d ran every round" i workers)
            50 c)
        counters)
    [ 1; 2; 4 ]

exception Kaboom of int

let test_team_failure () =
  Team.with_team ~workers:3 @@ fun team ->
  (match Team.run team (fun wid -> if wid >= 1 then raise (Kaboom wid)) with
  | () -> Alcotest.fail "team failure was not propagated"
  | exception Kaboom w -> chk_int "lowest failing worker re-raised" 1 w);
  (* A failed round must not wedge the barrier. *)
  let ran = Array.make 3 false in
  Team.run team (fun wid -> ran.(wid) <- true);
  Array.iteri
    (fun i ok -> chk_bool (Printf.sprintf "worker %d usable after failure" i) true ok)
    ran

(* Team jobs count as pool tasks: the no-nested-parallelism contract
   covers them on every worker, including the workers=1 caller path. *)
let test_team_nesting_rejected () =
  List.iter
    (fun workers ->
      Team.with_team ~workers @@ fun team ->
      match Team.run team (fun _ -> ignore (Pool.map ~jobs:2 (fun x -> x) [ 1 ])) with
      | () -> Alcotest.fail "pool use inside a team job was not rejected"
      | exception Pool.Nested -> ())
    [ 1; 2 ]

(* {2 Determinism regressions: the reason the pool may exist at all} *)

let render_fig5 jobs =
  Format.asprintf "%a" Multi.print
    (Multi.run ~jobs ~runs:2 ~sizes:[ 6.4 ] ~combos:[ [ "cs3"; "ldk" ] ] ())

let test_multi_determinism () =
  chk_bool "fig5 tables byte-identical at jobs 1 vs 4" true
    (String.equal (render_fig5 1) (render_fig5 4))

(* Per-task sinks: each simulation owns its observability pipeline, so
   the metrics snapshots must also be independent of [jobs]. *)
let metrics_json jobs =
  Pool.run_list ~jobs
    (List.init 2 (fun seed () ->
         let sink = Obs.Sink.create ~backend:Obs.Sink.Null () in
         ignore
           (Acfc_scenario.Scenario.run_specs ~seed ~obs:sink ~cache_blocks:128
              ~alloc_policy:Acfc_core.Config.Lru_sp
              [
                Runner.Spec.make ~smart:false ~disk:0
                  (Acfc_workload.Readn.app ~n:60 ~mode:`Oblivious ());
              ]);
         Obs.Json.to_string
           (Obs.Metrics.snapshot (Obs.Sink.metrics sink) ~now:(Obs.Sink.now sink))))

let test_metrics_determinism () =
  check
    Alcotest.(list string)
    "metrics snapshots byte-identical at jobs 1 vs 2" (metrics_json 1) (metrics_json 2)

let suites =
  [
    ( "par/pool",
      [
        case "map preserves order" test_map_order;
        case "run_list" test_run_list;
        case "async/await out of order" test_async_await;
        case "first failure re-raised after drain" test_exception_propagation;
        case "nested use rejected" test_nested_rejected;
        case "nested use rejected through async" test_async_nested_rejected;
      ] );
    ( "par/team",
      [
        case "every worker runs every round" test_team_rounds;
        case "failure propagation and recovery" test_team_failure;
        case "nested pool use rejected inside jobs" test_team_nesting_rejected;
      ] );
    ( "par/determinism",
      [
        case "fig5 grid at jobs 1 vs 4" test_multi_determinism;
        case "metrics snapshots at jobs 1 vs 2" test_metrics_determinism;
      ] );
  ]
