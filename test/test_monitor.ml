(* Live metrics streaming (Acfc_obs.Monitor): the acfc-monitor/1 JSONL
   codec, follow-tail semantics against a writer that is still running
   (a fleet simulation in another domain), the renderer, and the
   obs-required contract on the run entry points. *)

open Tutil
module Monitor = Acfc_obs.Monitor
module Obs = Acfc_obs
module Scenario = Acfc_scenario.Scenario
module Fleet = Acfc_fleet.Fleet

let with_stream f =
  let path = Filename.temp_file "acfc-monitor" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let null_sink () = Obs.Sink.create ~backend:Obs.Sink.Null ()

(* {2 Codec} *)

let test_parse_line () =
  let ok l = match Monitor.parse_line l with Ok e -> e | Error m -> Alcotest.fail m in
  (match ok {|{"schema":"acfc-monitor/1","type":"start"}|} with
  | Monitor.Start _ -> ()
  | _ -> Alcotest.fail "expected Start");
  (match ok {|{"type":"snapshot","metrics":{"now":1.0}}|} with
  | Monitor.Snapshot _ -> ()
  | _ -> Alcotest.fail "expected Snapshot");
  (match ok {|{"type":"end","now":9.5}|} with
  | Monitor.End _ -> ()
  | _ -> Alcotest.fail "expected End");
  let rejects l sub =
    match Monitor.parse_line l with
    | Ok _ -> Alcotest.fail ("accepted: " ^ l)
    | Error msg ->
      chk_bool (Printf.sprintf "rejects %s (got %S)" sub msg) true
        (contains_sub ~sub msg)
  in
  rejects "not json at all" "invalid JSON";
  rejects {|{"schema":"acfc-monitor/9","type":"start"}|} "unsupported schema";
  rejects {|{"type":"snapshot"}|} "without metrics";
  rejects {|{"type":"wat"}|} "unknown record type";
  rejects {|{"now":1.0}|} "without a type"

let test_producer_stream_shape () =
  with_stream (fun path ->
      let sink = null_sink () in
      let metrics = Obs.Sink.metrics sink in
      let p = Monitor.producer ~path ~info:[ ("scenario", Obs.Json.Str "cafe") ] () in
      Monitor.sample p ~metrics ~now:1.0;
      Monitor.sample p ~metrics ~now:2.0;
      Monitor.finish p ~now:2.0;
      (* finish is idempotent: a second call must not reopen or append. *)
      Monitor.finish p ~now:99.0;
      let events = ref [] in
      (match
         Monitor.follow ~path ~timeout_s:2.0
           ~on_event:(fun e ->
             events := e :: !events;
             `Continue)
           ()
       with
      | Ok () -> ()
      | Error msg -> Alcotest.fail msg);
      match List.rev !events with
      | [ Monitor.Start s; Monitor.Snapshot _; Monitor.Snapshot _; Monitor.End e ] ->
        check Alcotest.(option string) "info lands in the start record" (Some "cafe")
          (Option.bind (Obs.Json.member "scenario" s) Obs.Json.to_str);
        check Alcotest.(option (float 1e-9)) "end carries the final clock" (Some 2.0)
          (Option.bind (Obs.Json.member "now" e) Obs.Json.to_num)
      | l -> Alcotest.fail (Printf.sprintf "unexpected stream of %d events" (List.length l)))

(* {2 Follow semantics} *)

let test_follow_times_out () =
  with_stream (fun path ->
      let p = Monitor.producer ~path () in
      (* Stream started but never finished and never growing: the
         follower must give up after timeout_s, not hang. *)
      ignore p;
      match
        Monitor.follow ~path ~poll_s:0.005 ~timeout_s:0.1
          ~on_event:(fun _ -> `Continue)
          ()
      with
      | Ok () -> Alcotest.fail "follow must not report success"
      | Error msg -> chk_bool "timeout error" true (contains_sub ~sub:"no new data" msg))

let test_follow_missing_file_times_out () =
  match
    Monitor.follow
      ~path:(Filename.concat (Filename.get_temp_dir_name ()) "acfc-no-such.jsonl")
      ~poll_s:0.005 ~timeout_s:0.1
      ~on_event:(fun _ -> `Continue)
      ()
  with
  | Ok () -> Alcotest.fail "follow must not report success"
  | Error msg -> chk_bool "appearance timeout" true (contains_sub ~sub:"to appear" msg)

let test_follow_stop_early () =
  with_stream (fun path ->
      let sink = null_sink () in
      let p = Monitor.producer ~path () in
      Monitor.sample p ~metrics:(Obs.Sink.metrics sink) ~now:1.0;
      Monitor.finish p ~now:1.0;
      let seen = ref 0 in
      (match
         Monitor.follow ~path ~timeout_s:2.0
           ~on_event:(fun _ ->
             incr seen;
             `Stop)
           ()
       with
      | Ok () -> ()
      | Error msg -> Alcotest.fail msg);
      chk_int "callback stopped the stream after one event" 1 !seen)

(* The headline contract: tail a fleet simulation that is genuinely
   running in another domain, and see its snapshots arrive before the
   end record. *)
let test_tail_live_fleet_run () =
  with_stream (fun path ->
      let scn = Golden_defs.fleet_small () in
      let producer = Monitor.producer ~path ~info:[ ("scenario", Obs.Json.Str (Scenario.hash scn)) ] () in
      let runner =
        Domain.spawn (fun () ->
            Fleet.run ~jobs:2 ~obs:(null_sink ()) ~monitor:(producer, 5.0) scn)
      in
      let starts = ref 0 and snapshots = ref 0 and ends = ref 0 in
      let rendered = Buffer.create 1024 in
      let ppf = Format.formatter_of_buffer rendered in
      let r = Monitor.renderer () in
      let result =
        Monitor.follow ~path ~timeout_s:30.0
          ~on_event:(fun e ->
            Monitor.render r ppf e;
            (match e with
            | Monitor.Start _ -> incr starts
            | Monitor.Snapshot _ -> incr snapshots
            | Monitor.End _ -> incr ends);
            `Continue)
          ()
      in
      let report = Domain.join runner in
      Format.pp_print_flush ppf ();
      (match result with Ok () -> () | Error msg -> Alcotest.fail msg);
      chk_int "one start record" 1 !starts;
      chk_int "one end record" 1 !ends;
      chk_bool "at least one live snapshot" true (!snapshots >= 1);
      let out = Buffer.contents rendered in
      chk_bool "renderer names the scenario" true
        (contains_sub ~sub:(Scenario.hash scn) out);
      chk_bool "renderer prints per-client lines" true
        (contains_sub ~sub:"client 0:" out);
      chk_bool "renderer prints the server line" true (contains_sub ~sub:"server:" out);
      chk_bool "renderer prints the end summary" true
        (contains_sub ~sub:"run complete" out);
      (* The monitored run must still produce a normal report. *)
      chk_bool "fleet report intact" true (report.Fleet.makespan_s > 0.0))

(* Monitoring samples a live metrics registry; without obs there is
   nothing to sample, and the entry points must say so rather than
   silently stream nothing. *)
let test_monitor_requires_obs () =
  with_stream (fun path ->
      let scn =
        Scenario.make ~seed:0 ~cache_blocks:64 [ Scenario.workload "read60" ]
      in
      let p = Monitor.producer ~path () in
      match Scenario.run ~monitor:(p, 1.0) scn with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "Scenario.run must reject monitor without obs")

(* A monitored single-machine run streams snapshots from inside the
   engine and ends at the run's final clock. *)
let test_scenario_monitor_stream () =
  with_stream (fun path ->
      let scn =
        Scenario.make ~seed:0 ~cache_blocks:64 [ Scenario.workload "read60" ]
      in
      let p = Monitor.producer ~path () in
      ignore (Scenario.run ~obs:(null_sink ()) ~monitor:(p, 1.0) scn);
      let snapshots = ref 0 and finished = ref false in
      (match
         Monitor.follow ~path ~timeout_s:2.0
           ~on_event:(fun e ->
             (match e with
             | Monitor.Snapshot _ -> incr snapshots
             | Monitor.End _ -> finished := true
             | Monitor.Start _ -> ());
             `Continue)
           ()
       with
      | Ok () -> ()
      | Error msg -> Alcotest.fail msg);
      chk_bool "streamed at least one snapshot" true (!snapshots >= 1);
      chk_bool "stream properly finished" true !finished)

let suites =
  [
    ( "monitor",
      [
        case "parse_line classifies and rejects" test_parse_line;
        case "producer stream shape" test_producer_stream_shape;
        case "follow times out on a stalled stream" test_follow_times_out;
        case "follow times out when the file never appears"
          test_follow_missing_file_times_out;
        case "callback can stop the stream" test_follow_stop_early;
        case "scenario run streams snapshots" test_scenario_monitor_stream;
        case "monitor without obs is rejected" test_monitor_requires_obs;
        case "tails a live fleet run end-to-end" test_tail_live_fleet_run;
      ] );
  ]
