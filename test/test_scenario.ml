(* The scenario layer: JSON round-trips, catalog resolution, and the
   precise error messages promised by the .mli. *)

open Acfc_scenario
module Config = Acfc_core.Config
module Runner = Acfc_workload.Runner
module Disk = Acfc_disk.Disk
open Tutil

let chk_str = check Alcotest.string

let report r = Format.asprintf "%a" Runner.pp r

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.fail ("unexpected scenario error: " ^ e)

let expect_error msg = function
  | Ok _ -> Alcotest.fail ("parse succeeded; expected: " ^ msg)
  | Error e -> chk_str "error message" msg e

(* A scenario exercising every optional field, so the round-trip test
   covers the whole encoder. *)
let kitchen_sink =
  Scenario.make ~seed:42 ~disk_sched:Disk.Scan ~update_interval:10.0 ~hit_cost:0.5
    ~io_cpu_cost:1.5 ~write_cluster:8 ~readahead:false ~scattered_layout:true
    ~revocation:{ Config.min_decisions = 16; mistake_ratio = 0.25 }
    ~shared_files:Config.Sticky
    ~obs:{ Scenario.trace_path = Some "t.jsonl"; metrics_path = Some "m.json" }
    ~cache_blocks:512 ~alloc_policy:Config.Lru_s
    [
      Scenario.workload ~smart:true "din";
      Scenario.workload ~smart:false ~disk:1 ~file_blocks:700 "read200";
    ]

let roundtrip_json () =
  List.iter
    (fun s ->
      let s' = ok (Scenario.of_json (Scenario.to_json s)) in
      chk_str "of_json (to_json s) = s" (Scenario.to_string s) (Scenario.to_string s');
      chk_str "hash stable" (Scenario.hash s) (Scenario.hash s'))
    [
      kitchen_sink;
      Scenario.make ~cache_blocks:819 ~alloc_policy:Config.Global_lru
        [ Scenario.workload "cs3" ];
    ]

let roundtrip_experiment_grids () =
  (* Every scenario an experiment generates must survive save/load. *)
  let grids =
    [
      Acfc_experiments.Multi.scenarios ~runs:1 ~sizes:[ 6.4 ] ();
      Acfc_experiments.Criteria.scenarios ~runs:1 ();
      Acfc_experiments.Ablations.scenarios ~runs:1 ();
    ]
  in
  List.iter
    (List.iter (fun s ->
         let s' = ok (Scenario.of_string (Scenario.to_string s)) in
         chk_str "grid scenario round-trips" (Scenario.to_string s)
           (Scenario.to_string s')))
    grids

let save_load_run () =
  let s = Acfc_experiments.Multi.scenario ~mb:6.4 ~kernel:`Controlled ~seed:3 [ "cs3"; "ldk" ] in
  let file = Filename.temp_file "acfc_scenario" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove file)
    (fun () ->
      Scenario.save s file;
      let s' = ok (Scenario.load file) in
      chk_str "saved scenario reruns identically" (report (Scenario.run s))
        (report (Scenario.run s')))

let load_missing () =
  match Scenario.load "/nonexistent/acfc.json" with
  | Ok _ -> Alcotest.fail "loaded a nonexistent file"
  | Error e -> chk_bool "mentions the file" true (contains_sub ~sub:"/nonexistent/acfc.json" e)

let minimal = {|{"schema":"acfc-scenario/1","cache":{"capacity_blocks":819},"workloads":[{"app":"din"}]}|}

let defaults_fill_in () =
  let s = ok (Scenario.of_string minimal) in
  let r = Scenario.run s in
  chk_int "din runs with catalog defaults" 1
    (List.length r.Runner.apps);
  (* Paper apps default to smart; din under lru-sp avoids the thrash. *)
  chk_bool "smart default applied" true
    ((List.hd r.Runner.apps).Runner.block_ios < 9216)

(* Substring replace, to derive each malformed input from [minimal]. *)
let replace ~sub ~by s =
  let n = String.length sub in
  let b = Buffer.create (String.length s) in
  let i = ref 0 in
  while !i <= String.length s - n do
    if String.sub s !i n = sub then (
      Buffer.add_string b by;
      i := !i + n)
    else (
      Buffer.add_char b s.[!i];
      incr i)
  done;
  Buffer.add_string b (String.sub s !i (String.length s - !i));
  Buffer.contents b

let errors () =
  List.iter
    (fun (json, msg) -> expect_error msg (Scenario.of_string json))
    [
      ( replace ~sub:{|"capacity_blocks"|} ~by:{|"capacity_blks"|} minimal,
        {|scenario: unknown field "capacity_blks" at $.cache|} );
      ( replace ~sub:{|"capacity_blocks":819|}
          ~by:{|"capacity_blocks":819,"alloc_policy":"lru-xp"|} minimal,
        "scenario: unknown allocation policy \"lru-xp\" (expected global-lru, \
         alloc-lru, lru-s, lru-sp or clock-sp) at $.cache.alloc_policy" );
      ( replace ~sub:{|{"app":"din"}|} ~by:{|{"app":"din","disk":5}|} minimal,
        "scenario: disk index 5 out of range (2 disks) at $.workloads[0].disk" );
      ( replace ~sub:{|{"app":"din"}|} ~by:{|{"app":"dinx"}|} minimal,
        "scenario: unknown application \"dinx\" (expected one of din, cs1, cs3, \
         cs2, gli, ldk, pjn, sort, or readN / readN!) at $.workloads[0].app" );
      ( replace ~sub:"acfc-scenario/1" ~by:"acfc-scenario/9" minimal,
        "scenario: unsupported schema \"acfc-scenario/9\" (expected \
         acfc-scenario/1) at $.schema" );
      ( replace ~sub:{|"workloads":[{"app":"din"}]|} ~by:{|"workloads":[]|} minimal,
        "scenario: workloads must be non-empty at $.workloads" );
      ( replace ~sub:{|"workloads":[{"app":"din"}]|}
          ~by:{|"disks":[{"drive":"rz99"}],"workloads":[{"app":"din"}]|} minimal,
        "scenario: unknown drive \"rz99\" (expected rz56, rz26 or a parameter \
         object) at $.disks[0].drive" );
      ( replace ~sub:{|{"app":"din"}|} ~by:{|{"app":"din","file_blocks":64}|} minimal,
        "scenario: application \"din\" does not take file_blocks (readN only) at \
         $.workloads[0].app" );
    ]

let catalog () =
  chk_bool "read300! is foolish and smart by default" true
    (match Catalog.resolve "read300!" with
    | Ok e -> e.Catalog.smart_default
    | Error _ -> false);
  chk_bool "read300 is oblivious by default" true
    (match Catalog.resolve "read300" with
    | Ok e -> not e.Catalog.smart_default
    | Error _ -> false);
  chk_bool "read0 rejected" true (Result.is_error (Catalog.resolve "read0"));
  chk_bool "pjn lives on disk 1" true
    (match Catalog.resolve "pjn" with Ok e -> e.Catalog.disk = 1 | Error _ -> false)

let hash_distinguishes () =
  let s1 = Scenario.make ~cache_blocks:819 ~alloc_policy:Config.Lru_sp
      [ Scenario.workload "din" ] in
  let s2 = Scenario.make ~seed:1 ~cache_blocks:819 ~alloc_policy:Config.Lru_sp
      [ Scenario.workload "din" ] in
  chk_bool "different seeds hash differently" true (Scenario.hash s1 <> Scenario.hash s2);
  chk_bool "hash_list is order-sensitive" true
    (Scenario.hash_list [ s1; s2 ] <> Scenario.hash_list [ s2; s1 ])

let suites =
  [
    ( "scenario",
      [
        case "json round-trip" roundtrip_json;
        case "experiment grids round-trip" roundtrip_experiment_grids;
        case "save/load/run identical" save_load_run;
        case "load error on missing file" load_missing;
        case "catalog defaults fill in" defaults_fill_in;
        case "precise parse errors" errors;
        case "catalog resolution" catalog;
        case "hashes distinguish" hash_distinguishes;
      ] );
  ]
