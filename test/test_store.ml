(* The content-addressed artifact store (acfc.store): the strict
   acfc-store/1 manifest codec, verify-then-rename ingestion, label
   resolution, the same-digest ingestion race (exactly one writer
   observes Created), corrupted-entry detection, GC of unreferenced
   files, and the bench regression timeline over stored reports. *)

open Tutil
module Store = Acfc_store.Store
module Kind = Acfc_store.Kind
module Manifest = Acfc_store.Manifest
module Timeline = Acfc_store.Timeline

let ok_str = function
  | Ok v -> v
  | Error msg -> Alcotest.fail ("unexpected error: " ^ msg)

(* A fresh store root under the system temp dir, removed afterwards. *)
let with_store f =
  let root = Filename.temp_file "acfc-store" "" in
  Sys.remove root;
  let rec remove_tree path =
    match Unix.lstat path with
    | exception Unix.Unix_error _ -> ()
    | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter
        (fun name -> remove_tree (Filename.concat path name))
        (Sys.readdir path);
      (try Unix.rmdir path with Unix.Unix_error _ -> ())
    | _ -> ( try Sys.remove path with Sys_error _ -> ())
  in
  Fun.protect
    ~finally:(fun () -> remove_tree root)
    (fun () -> f (ok_str (Store.open_ root)))

let err_str = function
  | Ok _ -> Alcotest.fail "expected an error"
  | Error msg -> msg

let verify_ok s =
  match Acfc_store.Store.verify s with
  | Ok n -> n
  | Error problems -> Alcotest.fail ("verify failed: " ^ String.concat "; " problems)

(* {2 Manifest codec: strict acfc-store/1} *)

let digest_a = String.make 32 'a'

let digest_b = String.make 32 'b'

let test_manifest_roundtrip () =
  let m = Manifest.empty in
  let m, e0 =
    ok_str (Manifest.add m ~kind:Kind.Refstream ~digest:digest_a ~bytes:10
              ~label:(Some "refstream:x"))
  in
  let m, e1 =
    ok_str (Manifest.add m ~kind:Kind.Bench_report ~digest:digest_b ~bytes:20
              ~label:None)
  in
  chk_int "first entry seq" 0 e0.Manifest.seq;
  chk_int "second entry seq" 1 e1.Manifest.seq;
  let m' = ok_str (Manifest.of_string (Manifest.to_string m)) in
  check Alcotest.string "canonical JSON survives a round-trip"
    (Manifest.to_string m) (Manifest.to_string m');
  chk_int "entries survive" 2 (List.length (Manifest.entries m'));
  (match Manifest.resolve m' ~label:"refstream:x" with
  | Some e -> check Alcotest.string "label resolves" digest_a e.Manifest.digest
  | None -> Alcotest.fail "label lost in round-trip")

let test_manifest_idempotent_add () =
  let m = Manifest.empty in
  let m, _ =
    ok_str (Manifest.add m ~kind:Kind.Scenario ~digest:digest_a ~bytes:5 ~label:None)
  in
  (* Re-adding the same (kind, digest) returns the existing entry, and
     a previously unlabelled entry adopts the new label. *)
  let m, e =
    ok_str
      (Manifest.add m ~kind:Kind.Scenario ~digest:digest_a ~bytes:5
         ~label:(Some "scenario:h"))
  in
  chk_int "no duplicate entry" 1 (List.length (Manifest.entries m));
  check Alcotest.(option string) "label adopted" (Some "scenario:h") e.Manifest.label;
  (* Binding the same label to a different digest is refused. *)
  let msg =
    err_str
      (Manifest.add m ~kind:Kind.Scenario ~digest:digest_b ~bytes:5
         ~label:(Some "scenario:h"))
  in
  chk_bool "label clash names the binding" true (contains_sub ~sub:"already bound" msg)

let reject name doc sub =
  let msg = err_str (Manifest.of_string doc) in
  chk_bool
    (Printf.sprintf "%s: error mentions %S (got %S)" name sub msg)
    true (contains_sub ~sub msg)

let test_manifest_rejects () =
  reject "unknown top-level field"
    {|{"schema":"acfc-store/1","next_seq":0,"entries":[],"bogus":1}|}
    {|unknown field "bogus" at $|};
  reject "unknown entry field"
    (Printf.sprintf
       {|{"schema":"acfc-store/1","next_seq":1,"entries":[{"seq":0,"kind":"refstream","digest":"%s","bytes":1,"extra":true}]}|}
       digest_a)
    {|unknown field "extra" at $.entries[0]|};
  reject "wrong schema"
    {|{"schema":"acfc-store/2","next_seq":0,"entries":[]}|}
    "$.schema";
  reject "bad digest"
    {|{"schema":"acfc-store/1","next_seq":1,"entries":[{"seq":0,"kind":"refstream","digest":"nothex","bytes":1}]}|}
    "$.entries[0].digest";
  reject "unknown kind"
    (Printf.sprintf
       {|{"schema":"acfc-store/1","next_seq":1,"entries":[{"seq":0,"kind":"zip","digest":"%s","bytes":1}]}|}
       digest_a)
    "$.entries[0].kind";
  reject "non-increasing seq"
    (Printf.sprintf
       {|{"schema":"acfc-store/1","next_seq":2,"entries":[{"seq":1,"kind":"refstream","digest":"%s","bytes":1},{"seq":1,"kind":"scenario","digest":"%s","bytes":1}]}|}
       digest_a digest_b)
    "strictly increasing";
  reject "seq beyond next_seq"
    (Printf.sprintf
       {|{"schema":"acfc-store/1","next_seq":1,"entries":[{"seq":4,"kind":"refstream","digest":"%s","bytes":1}]}|}
       digest_a)
    "exceeds next_seq"

(* {2 Store operations} *)

let test_add_read_resolve () =
  with_store (fun s ->
      let content = "the artifact bytes\n" in
      let digest = Store.digest_of content in
      (match ok_str (Store.add s ~kind:Kind.Refstream ~label:"refstream:k" content) with
      | Store.Created e -> check Alcotest.string "digest" digest e.Manifest.digest
      | Store.Exists _ -> Alcotest.fail "first add must create");
      (match ok_str (Store.add s ~kind:Kind.Refstream content) with
      | Store.Exists _ -> ()
      | Store.Created _ -> Alcotest.fail "re-add must observe the existing entry");
      chk_bool "contains" true (Store.contains s ~kind:Kind.Refstream ~digest);
      check Alcotest.string "read returns the exact bytes" content
        (ok_str (Store.read s ~kind:Kind.Refstream ~digest));
      (match Store.resolve s ~label:"refstream:k" with
      | Some e -> check Alcotest.string "resolve" digest e.Manifest.digest
      | None -> Alcotest.fail "label did not resolve");
      check
        Alcotest.(list string)
        "available_digests lists the entry" [ digest ]
        (Store.available_digests s Kind.Refstream);
      chk_int "verify passes" 1 (verify_ok s))

let test_expect_mismatch () =
  with_store (fun s ->
      let msg =
        err_str (Store.add s ~kind:Kind.Scenario ~expect:digest_a "not those bytes")
      in
      chk_bool "mismatch names both digests" true (contains_sub ~sub:"expected" msg);
      (* Nothing may have been written. *)
      check Alcotest.(list string) "store untouched" []
        (Store.available_digests s Kind.Scenario);
      chk_int "manifest untouched" 0 (List.length (Store.entries s)))

(* Two domains race one handle on the same content: link(2) decides the
   winner, so exactly one observes Created and the other Exists, and the
   manifest ends up with a single entry either way. *)
let test_same_digest_race_domains () =
  with_store (fun s ->
      let content = String.init 4096 (fun i -> Char.chr (i land 0xff)) in
      let barrier = Atomic.make 0 in
      let contender () =
        Atomic.incr barrier;
        while Atomic.get barrier < 2 do Domain.cpu_relax () done;
        Store.add s ~kind:Kind.Wirgen_corpus content
      in
      let d = Domain.spawn contender in
      let a = contender () in
      let b = Domain.join d in
      let created, exists =
        List.fold_left
          (fun (c, e) -> function
            | Ok (Store.Created _) -> (c + 1, e)
            | Ok (Store.Exists _) -> (c, e + 1)
            | Error msg -> Alcotest.fail ("racing add failed: " ^ msg))
          (0, 0) [ a; b ]
      in
      chk_int "exactly one Created" 1 created;
      chk_int "the loser observes Exists" 1 exists;
      chk_int "one manifest entry" 1 (List.length (Store.entries s));
      chk_int "verify passes after the race" 1 (verify_ok s))

(* Two processes race separate handles on one root: the cross-process
   lockf serialises the manifest and link(2) the payload. fork(2) is
   off-limits once other tests have spawned domains, so the children
   are fresh re-executions of this very test binary — [main.ml]
   diverts them into {!race_child} before Alcotest starts. *)
let race_env = "ACFC_STORE_RACE_ROOT"

let race_content = "cross-process payload"

let race_child root =
  match Store.open_ root with
  | Error _ -> exit 3
  | Ok s ->
    (match Store.add s ~kind:Kind.Bench_report race_content with
    | Ok (Store.Created _) -> exit 0
    | Ok (Store.Exists _) -> exit 1
    | Error _ -> exit 3)

let test_same_digest_race_processes () =
  with_store (fun s ->
      let spawn () =
        Unix.create_process_env Sys.executable_name
          [| Sys.executable_name |]
          (Array.append (Unix.environment ())
             [| race_env ^ "=" ^ Store.root s |])
          Unix.stdin Unix.stdout Unix.stderr
      in
      let p1 = spawn () in
      let p2 = spawn () in
      let status pid =
        match Unix.waitpid [] pid with
        | _, Unix.WEXITED n -> n
        | _ -> Alcotest.fail "child did not exit normally"
      in
      let outcomes = List.sort compare [ status p1; status p2 ] in
      check Alcotest.(list int) "one Created, one Exists" [ 0; 1 ] outcomes;
      chk_int "one manifest entry" 1 (List.length (Store.entries s));
      chk_int "verify passes" 1 (verify_ok s))

let test_corruption_detected () =
  with_store (fun s ->
      let content = "pristine bytes" in
      let digest = Store.digest_of content in
      ignore (ok_str (Store.add s ~kind:Kind.Wir_program content));
      (* Flip the stored bytes behind the store's back. *)
      let p = Option.get (Store.lookup s ~kind:Kind.Wir_program ~digest) in
      let oc = open_out_bin p in
      output_string oc "tampered bytes";
      close_out oc;
      (match Store.read s ~kind:Kind.Wir_program ~digest with
      | Ok _ -> Alcotest.fail "read must refuse corrupted bytes"
      | Error msg ->
        chk_bool "read names the corruption" true (contains_sub ~sub:"corrupted" msg));
      match Store.verify s with
      | Ok _ -> Alcotest.fail "verify must flag the entry"
      | Error problems ->
        chk_int "one problem" 1 (List.length problems);
        chk_bool "problem names the digest" true
          (contains_sub ~sub:digest (List.hd problems)))

let test_gc_removes_unreferenced () =
  with_store (fun s ->
      let content = "kept" in
      let digest = Store.digest_of content in
      ignore (ok_str (Store.add s ~kind:Kind.Scenario content));
      (* An unindexed file in a kind dir and a staging leftover. *)
      let stray = Filename.concat (Filename.concat (Store.root s) "scenario") digest_b in
      let leftover = Filename.concat (Filename.concat (Store.root s) "tmp") "x.part" in
      List.iter
        (fun p ->
          let oc = open_out p in
          output_string oc "junk";
          close_out oc)
        [ stray; leftover ];
      let removed = List.sort String.compare (Store.gc s) in
      check Alcotest.(list string) "gc removes exactly the strays"
        (List.sort String.compare [ stray; leftover ])
        removed;
      chk_bool "referenced entry survives" true
        (Store.contains s ~kind:Kind.Scenario ~digest);
      chk_int "verify passes after gc" 1 (verify_ok s))

(* {2 Timeline over stored bench reports} *)

let report rows =
  let row (name, ops) =
    Printf.sprintf {|{"name":"%s","ops_per_sec":%f,"alloc_words_per_op":8.0,"ops":64}|}
      name ops
  in
  Printf.sprintf {|{"schema":"acfc-bench/1","perf":[%s]}|}
    (String.concat "," (List.map row rows))
  ^ "\n"

let test_timeline_scan_and_gate () =
  with_store (fun s ->
      (* Three runs: "steady" wobbles 2%%, "regressed" halves in run 3. *)
      List.iter
        (fun doc -> ignore (ok_str (Store.add s ~kind:Kind.Bench_report doc)))
        [
          report [ ("steady", 1000.0); ("regressed", 2000.0) ];
          report [ ("steady", 980.0); ("regressed", 1900.0) ];
          report [ ("steady", 1005.0); ("regressed", 900.0) ];
        ];
      let rows = ok_str (Timeline.scan s) in
      check Alcotest.(list string) "rows sorted by name"
        [ "regressed"; "steady" ]
        (List.map (fun r -> r.Timeline.name) rows);
      List.iter
        (fun r -> chk_int (r.Timeline.name ^ " has three points") 3
            (List.length r.Timeline.points))
        rows;
      (match Timeline.regressions rows with
      | [ (row, drop, _) ] ->
        check Alcotest.string "only the halved row is flagged" "regressed"
          row.Timeline.name;
        chk_bool "drop above the 30% threshold" true (drop > Timeline.default_threshold)
      | l -> Alcotest.fail (Printf.sprintf "expected one regression, got %d" (List.length l)));
      chk_int "a permissive threshold flags nothing" 0
        (List.length (Timeline.regressions ~threshold:0.9 rows));
      let rendered = Format.asprintf "%a" (Timeline.render ?threshold:None) rows in
      chk_bool "render flags the regression" true
        (contains_sub ~sub:"! regression" rendered);
      chk_bool "render names the row" true (contains_sub ~sub:"regressed" rendered))

let test_timeline_skips_null_and_rejects_garbage () =
  with_store (fun s ->
      ignore
        (ok_str
           (Store.add s ~kind:Kind.Bench_report
              ({|{"schema":"acfc-bench/1","perf":[{"name":"nulled","ops_per_sec":null,"alloc_words_per_op":null,"ops":0}]}|}
              ^ "\n")));
      chk_int "null estimates contribute no rows" 0
        (List.length (ok_str (Timeline.scan s)));
      ignore (ok_str (Store.add s ~kind:Kind.Bench_report "{\"schema\":\"nope/9\"}\n"));
      chk_bool "foreign schema is an error" true
        (contains_sub ~sub:"unsupported schema" (err_str (Timeline.scan s))))

let suites =
  [
    ( "store.manifest",
      [
        case "round-trip" test_manifest_roundtrip;
        case "idempotent add, label adoption and clash" test_manifest_idempotent_add;
        case "strict rejections with $.path" test_manifest_rejects;
      ] );
    ( "store",
      [
        case "add/read/resolve/verify" test_add_read_resolve;
        case "expect mismatch writes nothing" test_expect_mismatch;
        case "same-digest race, two domains" test_same_digest_race_domains;
        case "same-digest race, two processes" test_same_digest_race_processes;
        case "corrupted entry detected" test_corruption_detected;
        case "gc removes only unreferenced files" test_gc_removes_unreferenced;
      ] );
    ( "store.timeline",
      [
        case "scan, regressions and render" test_timeline_scan_and_gate;
        case "null estimates and foreign schemas" test_timeline_skips_null_and_rejects_garbage;
      ] );
  ]
