(* The workload IR.

   The heart of this suite is the lockstep section: for every
   application in the catalog it runs the pre-IR hand-written closure
   (copied verbatim below) and the compiled program side by side on
   identical machines and asserts the two runs are indistinguishable —
   same runner report, same recorded reference stream (blocks, hit/miss
   flags, order), and same observability event sequence, which covers
   both the data path and the fbehavior advice stream. Because the
   closures and the programs draw from the same per-process RNG, any
   divergence in draw order shows up here immediately.

   The rest covers the acfc-wir/1 codec (round-trips, precise parse
   error paths in the style of test_scenario), the static validator,
   [Wir.references] against a live recording, the Refstream conversions
   of satellite 1, and inline-program scenarios end to end. *)

open Acfc_scenario
module Wir = Acfc_wir.Wir
module App = Acfc_workload.App
module Env = Acfc_workload.Env
module Runner = Acfc_workload.Runner
module Recorder = Acfc_replacement.Recorder
module Refstream = Acfc_replacement.Refstream
module Config = Acfc_core.Config
module Policy = Acfc_core.Policy
module Fs = Acfc_fs.Fs
module File = Acfc_fs.File
module Rng = Acfc_sim.Rng
module Obs = Acfc_obs
open Tutil

let chk_str = check Alcotest.string

let report r = Format.asprintf "%a" Runner.pp r

let ok = function
  | Ok v -> v
  | Error e -> Alcotest.fail ("unexpected error: " ^ e)

let expect_error msg = function
  | Ok _ -> Alcotest.fail ("succeeded; expected: " ^ msg)
  | Error e -> chk_str "error message" msg e

let block_bytes = Acfc_disk.Params.block_bytes

(* {2 The seed closures}

   Verbatim copies of the eight application bodies as they were before
   the IR refactor, so the lockstep tests compare against the original
   semantics and not against whatever the compilers currently emit. *)

let seed_symbol_search ?(name = "cs1") ?(database_blocks = 1141) ?(queries = 8)
    ?(cpu_per_block = 0.0024) () =
  let run env ~disk =
    let db =
      Fs.create_file env.Env.fs ~owner:env.Env.pid
        ~name:(Env.unique_name env "cscope.out")
        ~disk
        ~size_bytes:(database_blocks * block_bytes)
        ()
    in
    Env.set_priority env db 0;
    Env.set_policy env ~prio:0 Policy.Mru;
    for _query = 1 to queries do
      for index = 0 to database_blocks - 1 do
        Env.read_blocks env db ~first:index ~count:1;
        Env.compute env cpu_per_block
      done
    done
  in
  App.make ~name ~category:"cyclic" run

let seed_text_search ~name ~files ?(file_blocks = 50) ~queries ~cpu_per_block () =
  let run env ~disk =
    let sources =
      List.init files (fun i ->
          Fs.create_file env.Env.fs ~owner:env.Env.pid
            ~name:(Env.unique_name env (Printf.sprintf "src%02d.c" i))
            ~disk
            ~size_bytes:(file_blocks * block_bytes)
            ())
    in
    Env.set_policy env ~prio:0 Policy.Mru;
    for _query = 1 to queries do
      List.iter
        (fun file ->
          for index = 0 to file_blocks - 1 do
            Env.read_blocks env file ~first:index ~count:1;
            Env.compute env cpu_per_block
          done)
        sources
    done
  in
  App.make ~name ~category:"cyclic" run

let seed_din =
  let run env ~disk =
    let trace =
      Fs.create_file env.Env.fs ~owner:env.Env.pid
        ~name:(Env.unique_name env "cc.trace")
        ~disk
        ~size_bytes:(1024 * block_bytes)
        ()
    in
    Env.set_priority env trace 0;
    Env.set_policy env ~prio:0 Policy.Mru;
    for _sim = 1 to 9 do
      for index = 0 to 1023 do
        Env.read_blocks env trace ~first:index ~count:1;
        Env.compute env 0.0101
      done
    done
  in
  App.make ~name:"din" ~category:"cyclic" run

let seed_gli =
  let index_files =
    [ ".glimpse_index"; ".glimpse_partitions"; ".glimpse_filenames"; ".glimpse_statistics" ]
  in
  let index_blocks_per_file = 64 in
  let partitions = 64 in
  let partition_blocks = 80 in
  let queries = 5 in
  let partitions_per_query = 26 in
  let cpu_per_block = 0.0082 in
  let run env ~disk =
    let indexes =
      List.map
        (fun name ->
          Fs.create_file env.Env.fs ~owner:env.Env.pid
            ~name:(Env.unique_name env name)
            ~disk
            ~size_bytes:(index_blocks_per_file * block_bytes)
            ())
        index_files
    in
    let parts =
      Array.init partitions (fun i ->
          Fs.create_file env.Env.fs ~owner:env.Env.pid
            ~name:(Env.unique_name env (Printf.sprintf "partition.%02d" i))
            ~disk
            ~size_bytes:(partition_blocks * block_bytes)
            ())
    in
    List.iter (fun index -> Env.set_priority env index 1) indexes;
    Env.set_policy env ~prio:1 Policy.Mru;
    Env.set_policy env ~prio:0 Policy.Mru;
    for query = 0 to queries - 1 do
      List.iter
        (fun index ->
          for block = 0 to index_blocks_per_file - 1 do
            Env.read_blocks env index ~first:block ~count:1;
            Env.compute env cpu_per_block
          done)
        indexes;
      for p = 0 to partitions - 1 do
        if ((7 * p) + (13 * query)) mod partitions < partitions_per_query then
          for block = 0 to partition_blocks - 1 do
            Env.read_blocks env parts.(p) ~first:block ~count:1;
            Env.compute env cpu_per_block
          done
      done
    done
  in
  App.make ~name:"gli" ~category:"hot/cold" run

let seed_ldk =
  let object_files = 80 in
  let file_blocks = 40 in
  let symbol_blocks = 12 in
  let output_blocks = 1024 in
  let cpu_per_block = 0.0113 in
  let run env ~disk =
    let objects =
      Array.init object_files (fun i ->
          Fs.create_file env.Env.fs ~owner:env.Env.pid
            ~name:(Env.unique_name env (Printf.sprintf "obj%02d.o" i))
            ~disk
            ~size_bytes:(file_blocks * block_bytes)
            ())
    in
    let output =
      Fs.create_file env.Env.fs ~owner:env.Env.pid
        ~name:(Env.unique_name env "vmunix")
        ~disk ~size_bytes:0
        ~reserve_bytes:(output_blocks * block_bytes)
        ()
    in
    Array.iter
      (fun file ->
        for block = 0 to symbol_blocks - 1 do
          Env.read_blocks env file ~first:block ~count:1;
          Env.compute env cpu_per_block
        done)
      objects;
    Array.iter
      (fun file ->
        for block = 0 to file_blocks - 1 do
          Env.read_blocks env file ~first:block ~count:1;
          Env.compute env cpu_per_block;
          if block >= symbol_blocks then Env.done_with_block env file block
        done)
      objects;
    for block = 0 to output_blocks - 1 do
      Env.write_blocks env output ~first:block ~count:1;
      Env.compute env (cpu_per_block /. 2.0);
      Env.done_with_block env output block
    done
  in
  App.make ~name:"ldk" ~category:"access-once" run

let seed_pjn =
  let outer_blocks = 410 in
  let index_blocks = 640 in
  let internal_blocks = 40 in
  let inner_blocks = 4096 in
  let probes = 20_000 in
  let match_fraction = 0.2 in
  let cpu_per_probe = 0.0045 in
  let run env ~disk =
    let outer =
      Fs.create_file env.Env.fs ~owner:env.Env.pid
        ~name:(Env.unique_name env "twentyk")
        ~disk
        ~size_bytes:(outer_blocks * block_bytes)
        ()
    in
    let index =
      Fs.create_file env.Env.fs ~owner:env.Env.pid
        ~name:(Env.unique_name env "twohundredk_unique1")
        ~disk
        ~size_bytes:(index_blocks * block_bytes)
        ()
    in
    let inner =
      Fs.create_file env.Env.fs ~owner:env.Env.pid
        ~name:(Env.unique_name env "twohundredk")
        ~disk
        ~size_bytes:(inner_blocks * block_bytes)
        ()
    in
    Env.set_priority env index 1;
    let rng = env.Env.rng in
    for probe = 0 to probes - 1 do
      if probe mod (probes / outer_blocks) = 0 then begin
        let outer_block =
          Stdlib.min (probe / (probes / outer_blocks)) (outer_blocks - 1)
        in
        Env.read_blocks env outer ~first:outer_block ~count:1
      end;
      Env.read_blocks env index ~first:(Rng.int rng internal_blocks) ~count:1;
      Env.read_blocks env index
        ~first:(internal_blocks + Rng.int rng (index_blocks - internal_blocks))
        ~count:1;
      if Rng.float rng 1.0 < match_fraction then
        Env.read_blocks env inner ~first:(Rng.int rng inner_blocks) ~count:1;
      Env.compute env cpu_per_probe
    done
  in
  App.make ~name:"pjn" ~category:"hot/cold" run

let seed_sort =
  let input_blocks = 2176 in
  let run_blocks = 128 in
  let initial_runs = 17 in
  let merge_width = 8 in
  let sort_cpu_per_block = 0.065 in
  let merge_cpu_per_block = 0.028 in
  let write_cpu_per_block = 0.008 in
  let merge env ~disk ~name ~inputs =
    let total = List.fold_left (fun acc f -> acc + File.size_blocks f) 0 inputs in
    let output =
      Fs.create_file env.Env.fs ~owner:env.Env.pid
        ~name:(Env.unique_name env name)
        ~disk ~size_bytes:0
        ~reserve_bytes:(total * block_bytes)
        ()
    in
    let files = Array.of_list inputs in
    let cursors = Array.map (fun _ -> 0) files in
    let remaining = ref (Array.length files) in
    let next_out = ref 0 in
    while !remaining > 0 do
      Array.iteri
        (fun i file ->
          if cursors.(i) < File.size_blocks file then begin
            let block = cursors.(i) in
            Env.read_blocks env file ~first:block ~count:1;
            Env.compute env merge_cpu_per_block;
            Env.done_with_block env file block;
            cursors.(i) <- block + 1;
            if cursors.(i) = File.size_blocks file then decr remaining;
            Env.write_blocks env output ~first:!next_out ~count:1;
            Env.compute env write_cpu_per_block;
            incr next_out
          end)
        files
    done;
    List.iter (fun file -> Fs.unlink env.Env.fs file) inputs;
    output
  in
  let run env ~disk =
    let input =
      Fs.create_file env.Env.fs ~owner:env.Env.pid
        ~name:(Env.unique_name env "input.txt")
        ~disk
        ~size_bytes:(input_blocks * block_bytes)
        ()
    in
    Env.set_policy env ~prio:(-1) Policy.Mru;
    Env.set_policy env ~prio:0 Policy.Mru;
    Env.set_priority env input (-1);
    let runs = ref [] in
    for r = 0 to initial_runs - 1 do
      let tmp =
        Fs.create_file env.Env.fs ~owner:env.Env.pid
          ~name:(Env.unique_name env (Printf.sprintf "tmp.run%02d" r))
          ~disk ~size_bytes:0
          ~reserve_bytes:(run_blocks * block_bytes)
          ()
      in
      for block = 0 to run_blocks - 1 do
        let input_block = (r * run_blocks) + block in
        Env.read_blocks env input ~first:input_block ~count:1;
        Env.compute env sort_cpu_per_block;
        Env.done_with_block env input input_block;
        Env.write_blocks env tmp ~first:block ~count:1;
        Env.compute env write_cpu_per_block
      done;
      runs := tmp :: !runs
    done;
    let runs = List.rev !runs in
    let rec merge_all generation files =
      match files with
      | [] -> ()
      | [ _final ] -> ()
      | _ ->
        let rec take n = function
          | [] -> ([], [])
          | l when n = 0 -> ([], l)
          | x :: rest ->
            let batch, leftover = take (n - 1) rest in
            (x :: batch, leftover)
        in
        let rec level i files acc =
          match files with
          | [] -> List.rev acc
          | _ ->
            let batch, rest = take merge_width files in
            let merged =
              merge env ~disk
                ~name:(Printf.sprintf "tmp.merge%d_%d" generation i)
                ~inputs:batch
            in
            level (i + 1) rest (merged :: acc)
        in
        merge_all (generation + 1) (level 0 files [])
    in
    merge_all 0 runs
  in
  App.make ~name:"sort" ~category:"write-then-read" run

let seed_readn ?(file_blocks = 1200) ~n ~mode () =
  let repeats = 5 in
  let cpu_per_block = 0.0075 in
  let name =
    Printf.sprintf "read%d%s" n (match mode with `Foolish -> "!" | `Oblivious -> "")
  in
  let run env ~disk =
    let file =
      Fs.create_file env.Env.fs ~owner:env.Env.pid
        ~name:(Env.unique_name env "readn.dat")
        ~disk
        ~size_bytes:(file_blocks * block_bytes)
        ()
    in
    (match mode with
    | `Foolish ->
      Env.set_priority env file 0;
      Env.set_policy env ~prio:0 Policy.Mru
    | `Oblivious -> ());
    let group = ref 0 in
    while !group * n < file_blocks do
      let first = !group * n in
      let count = Stdlib.min n (file_blocks - first) in
      for _pass = 1 to repeats do
        for block = first to first + count - 1 do
          Env.read_blocks env file ~first:block ~count:1;
          Env.compute env cpu_per_block
        done
      done;
      incr group
    done
  in
  App.make ~name ~category:"grouped-cyclic" run

(* {2 Lockstep equivalence} *)

(* One application on one machine, capturing everything observable:
   the runner report, the recorded hit/miss reference stream, and the
   full observability event sequence (engine, syscalls including the
   strategy calls, cache, bus, disks). *)
let run_capture ?(seed = 11) ~smart app =
  let recorder = Recorder.create () in
  let events = ref [] in
  let sink =
    Obs.Sink.create ~backend:(Obs.Sink.Custom (fun r -> events := r :: !events)) ()
  in
  let result =
    Scenario.run_specs ~seed ~tracer:(Recorder.tracer recorder) ~obs:sink
      ~cache_blocks:819 ~alloc_policy:Config.Lru_sp
      [ Runner.Spec.make ~smart ~disk:0 app ]
  in
  (report result, Recorder.stream recorder, List.rev !events)

let lockstep ?smart name seed_app () =
  let entry = ok (Catalog.resolve name) in
  (match App.program entry.Catalog.app with
  | Some p -> ok (Wir.validate p)
  | None -> Alcotest.fail (name ^ ": catalog application is not an IR program"));
  let smart = match smart with Some s -> s | None -> entry.Catalog.smart_default in
  let closure_report, closure_refs, closure_events = run_capture ~smart seed_app in
  let program_report, program_refs, program_events =
    run_capture ~smart entry.Catalog.app
  in
  chk_str "runner report identical" closure_report program_report;
  chk_int "reference count" (Array.length closure_refs) (Array.length program_refs);
  chk_bool "reference stream identical (blocks, hits, order)" true
    (closure_refs = program_refs);
  chk_int "event count" (List.length closure_events) (List.length program_events);
  chk_bool "event sequence identical (data path + advice stream)" true
    (closure_events = program_events)

let lockstep_cases =
  [
    case "din lockstep" (lockstep "din" seed_din);
    case "din lockstep (oblivious)" (lockstep ~smart:false "din" seed_din);
    case "cs1 lockstep" (lockstep "cs1" (seed_symbol_search ()));
    case "cs2 lockstep"
      (lockstep "cs2"
         (seed_text_search ~name:"cs2" ~files:47 ~queries:5 ~cpu_per_block:0.0137 ()));
    case "cs3 lockstep"
      (lockstep "cs3"
         (seed_text_search ~name:"cs3" ~files:36 ~file_blocks:48 ~queries:4
            ~cpu_per_block:0.008 ()));
    case "gli lockstep" (lockstep "gli" seed_gli);
    case "ldk lockstep" (lockstep "ldk" seed_ldk);
    case "pjn lockstep" (lockstep "pjn" seed_pjn);
    case "sort lockstep" (lockstep "sort" seed_sort);
    case "read300 lockstep"
      (lockstep "read300" (seed_readn ~n:300 ~mode:`Oblivious ()));
    case "read300! lockstep"
      (lockstep "read300!" (seed_readn ~n:300 ~mode:`Foolish ()));
  ]

(* {2 The fast-forwarded demand stream} *)

let program_of name =
  match App.program (ok (Catalog.resolve name)).Catalog.app with
  | Some p -> p
  | None -> Alcotest.fail (name ^ " is not a program")

let references_match_live () =
  (* A deterministic program's fast-forwarded stream is exactly the
     demand reference stream a live run records (slot index = file id
     on a single-workload machine). *)
  let recorder = Recorder.create () in
  ignore
    (Scenario.run_specs ~seed:3 ~tracer:(Recorder.tracer recorder) ~cache_blocks:819
       ~alloc_policy:Config.Lru_sp
       [ Runner.Spec.make ~smart:true ~disk:0 (ok (Catalog.resolve "din")).Catalog.app ]);
  let live = Recorder.to_trace recorder in
  let fast = Wir.references (program_of "din") in
  chk_int "same length" (Array.length live) (Array.length fast);
  chk_bool "same stream" true (live = fast)

let reference_counts () =
  let count name = Array.length (Wir.references (program_of name)) in
  chk_int "din: 9 passes over 1024 blocks" 9216 (count "din");
  chk_int "ldk: symbols + full scan + image" 5184 (count "ldk");
  chk_int "cs1: 8 queries over 1141 blocks" 9128 (count "cs1");
  chk_int "din op count" 5 (Wir.op_count (program_of "din"));
  chk_int "din file count" 1 (Wir.file_count (program_of "din"));
  chk_int "sort file count" 22 (Wir.file_count (program_of "sort"))

let references_reproducible () =
  (* pjn is stochastic: the stream is a function of the RNG handed in. *)
  let pjn = program_of "pjn" in
  let a = Wir.references ~rng:(Rng.create 5) pjn in
  let b = Wir.references ~rng:(Rng.create 5) pjn in
  let c = Wir.references ~rng:(Rng.create 6) pjn in
  chk_bool "same seed, same stream" true (a = b);
  chk_bool "different seed, different stream" false (a = c)

(* {2 acfc-wir/1 codec} *)

let roundtrip_catalog () =
  let progs =
    List.map (fun name -> (name, program_of name)) Catalog.app_names
    @ [ ("read300", program_of "read300"); ("read300!", program_of "read300!") ]
  in
  List.iter
    (fun (name, p) ->
      let s = Wir.to_string p in
      let p' = ok (Wir.of_string s) in
      chk_str (name ^ " fixed point") s (Wir.to_string p');
      chk_str (name ^ " hash stable") (Wir.hash p) (Wir.hash p');
      ok (Wir.validate p'))
    progs

let roundtrip_structural () =
  (* A program exercising every op and every omitted default. *)
  let p =
    Wir.make ~name:"kitchen" ~category:"custom"
      [
        Wir.open_file ~name:"a" ~size_blocks:10 ();
        Wir.open_file ~name:"b" ~size_blocks:0 ~reserve_blocks:4 ();
        Wir.set_priority ~file:0 ~prio:1;
        Wir.set_policy ~prio:0 Policy.Mru;
        Wir.set_temppri ~file:0 ~first:2 ~last:5 ~prio:(-1);
        Wir.loop 3
          [
            Wir.read ~cpu:0.01 ~file:0 ~first:0 ~count:10 ();
            Wir.rand_read ~file:0 ~base:0 ~range:10 ();
            Wir.choice ~prob:0.5
              [ Wir.write ~done_with:true ~file:1 ~first:0 ~count:4 () ]
              [ Wir.compute 0.002 ];
          ];
        Wir.seq [ Wir.done_with ~file:0 ~index:3 ];
        Wir.unlink 1;
      ]
  in
  ok (Wir.validate p);
  let p' = ok (Wir.of_json (Wir.to_json p)) in
  chk_bool "of_json (to_json p) = p" true (p = p')

let minimal_wir =
  {|{"schema":"acfc-wir/1","name":"t","ops":[{"op":"open","name":"f","size_blocks":4},{"op":"read","file":0,"first":0,"count":4}]}|}

let parse_errors () =
  (* First-occurrence substring replace, to derive each malformed
     input from [minimal_wir]. *)
  let replace ~sub ~by s =
    let rec find i =
      if i + String.length sub > String.length s then
        Alcotest.fail ("fixture lost substring " ^ sub)
      else if String.sub s i (String.length sub) = sub then i
      else find (i + 1)
    in
    let i = find 0 in
    String.sub s 0 i ^ by
    ^ String.sub s (i + String.length sub) (String.length s - i - String.length sub)
  in
  List.iter
    (fun (json, msg) -> expect_error msg (Wir.of_string json))
    [
      ( replace ~sub:{|"count":4|} ~by:{|"cnt":4|} minimal_wir,
        {|wir: unknown field "cnt" at $.ops[1]|} );
      ( replace ~sub:{|"op":"read"|} ~by:{|"op":"raed"|} minimal_wir,
        "wir: unknown op \"raed\" (expected open, read, write, rand_read, compute, \
         advise, unlink, seq, loop or choice) at $.ops[1].op" );
      ( replace ~sub:"acfc-wir/1" ~by:"acfc-wir/9" minimal_wir,
        {|wir: unsupported schema "acfc-wir/9" (expected acfc-wir/1) at $.schema|} );
      ( replace ~sub:{|"file":0,|} ~by:"" minimal_wir,
        {|wir: missing required field "file" at $.ops[1]|} );
      ( replace ~sub:{|{"op":"read","file":0,"first":0,"count":4}|}
          ~by:{|{"op":"advise","kind":"pinned","file":0}|} minimal_wir,
        "wir: unknown advice kind \"pinned\" (expected priority, policy, temppri \
         or done_with) at $.ops[1].kind" );
      ( replace ~sub:{|{"op":"read","file":0,"first":0,"count":4}|}
          ~by:{|{"op":"advise","kind":"policy","prio":0,"policy":"fifo"}|} minimal_wir,
        {|wir: unknown policy "fifo" (expected lru or mru) at $.ops[1].policy|} );
      ( replace ~sub:{|"name":"t",|} ~by:{|"name":"t","author":"x",|} minimal_wir,
        {|wir: unknown field "author" at $|} );
      ( replace ~sub:{|"first":0|} ~by:{|"first":0.5|} minimal_wir,
        {|wir: expected an integer at $.ops[1].first|} );
    ];
  (match Wir.of_string "{" with
  | Ok _ -> Alcotest.fail "parsed malformed JSON"
  | Error e ->
    chk_bool "invalid JSON is prefixed" true (contains_sub ~sub:"wir: invalid JSON" e))

let validate_errors () =
  let p ops = Wir.make ~name:"t" ~category:"custom" ops in
  let f = Wir.open_file ~name:"f" ~size_blocks:10 () in
  List.iter
    (fun (program, msg) -> expect_error msg (Wir.validate program))
    [
      ( p [ Wir.read ~file:2 ~first:0 ~count:1 () ],
        "wir: file 2 is not open (0 files opened so far) at $.ops[0]" );
      ( p [ Wir.loop 2 [ Wir.open_file ~name:"f" ~size_blocks:1 () ] ],
        "wir: open is not allowed inside loop or choice at $.ops[0].body[0]" );
      ( p [ f; Wir.read ~file:0 ~first:0 ~count:20 () ],
        "wir: read of blocks [0, 20) exceeds file 0's 10-block extent at $.ops[1]" );
      ( p [ f; Wir.choice ~prob:0.5 [ Wir.read ~file:1 ~first:0 ~count:1 () ] [] ],
        "wir: file 1 is not open (1 file opened so far) at $.ops[1].then[0]" );
      ( p [ f; Wir.unlink 0; Wir.read ~file:0 ~first:0 ~count:1 () ],
        "wir: file 0 was unlinked at $.ops[2]" );
      ( p [ Wir.choice ~prob:1.5 [] [] ],
        "wir: prob must be between 0 and 1 at $.ops[0]" );
      ( p [ f; Wir.open_file ~name:"f" ~size_blocks:1 () ],
        {|wir: duplicate file name "f" at $.ops[1]|} );
    ];
  (* The embedding form used by the scenario parser. *)
  expect_error
    "scenario: file 0 is not open (0 files opened so far) at \
     $.workloads[0].program.ops[0]"
    (Wir.validate_at ~label:"scenario" ~path:"$.workloads[0].program"
       (p [ Wir.read ~file:0 ~first:0 ~count:1 () ]))

(* {2 Refstream: the one reference-stream representation} *)

let refstream_conversions () =
  let bare = [| blk 1; blk ~file:2 5 |] in
  let lifted = Refstream.of_blocks bare in
  chk_int "of_blocks keeps length" 2 (Array.length lifted);
  chk_bool "demand inverts of_blocks" true (Refstream.demand lifted = bare);
  let annotated =
    [|
      { Refstream.pid = pid 1; block = blk 3; hit = true; prefetch = false };
      { Refstream.pid = pid 2; block = blk ~file:1 0; hit = false; prefetch = true };
      { Refstream.pid = pid 1; block = blk 4; hit = false; prefetch = false };
    |]
  in
  chk_bool "demand drops prefetch" true
    (Refstream.demand annotated = [| blk 3; blk 4 |]);
  chk_bool "include_prefetch keeps it" true
    (Refstream.demand ~include_prefetch:true annotated = [| blk 3; blk ~file:1 0; blk 4 |]);
  chk_bool "pid filter" true (Refstream.demand ~pid:(pid 2) annotated = [||])

let refstream_codec () =
  let stream =
    [|
      { Refstream.pid = pid 1; block = blk 3; hit = true; prefetch = false };
      { Refstream.pid = pid 2; block = blk ~file:1 0; hit = false; prefetch = true };
    |]
  in
  let path = Filename.temp_file "acfc_refstream" ".trace" in
  let oc = open_out path in
  Refstream.save stream oc;
  close_out oc;
  let ic = open_in path in
  let stream' = Refstream.load ic in
  close_in ic;
  Sys.remove path;
  chk_bool "text codec round-trips" true (stream = stream')

(* {2 Inline-program scenarios} *)

let tiny_program =
  Wir.make ~name:"tiny" ~category:"custom"
    [
      Wir.open_file ~name:"f.dat" ~size_blocks:8 ();
      Wir.loop 2 [ Wir.read ~cpu:0.001 ~file:0 ~first:0 ~count:8 () ];
    ]

let inline_minimal =
  {|{"schema":"acfc-scenario/1","cache":{"capacity_blocks":64},"workloads":[{"program":{"schema":"acfc-wir/1","name":"tiny","category":"custom","ops":[{"op":"open","name":"f.dat","size_blocks":8},{"op":"loop","times":2,"body":[{"op":"read","file":0,"first":0,"count":8,"cpu":0.001}]}]}}]}|}

let inline_scenario_runs () =
  let s = ok (Scenario.of_string inline_minimal) in
  let r = Scenario.run s in
  (match r.Runner.apps with
  | [ a ] ->
    chk_str "app name comes from the program" "tiny" a.Runner.app_name;
    chk_int "8 compulsory block I/Os" 8 a.Runner.block_ios
  | apps -> Alcotest.fail (Printf.sprintf "expected 1 app, got %d" (List.length apps)));
  (* The same scenario built in OCaml runs identically. *)
  let built =
    Scenario.make ~cache_blocks:64 ~alloc_policy:Config.Lru_sp
      [ Scenario.inline_workload tiny_program ]
  in
  chk_str "JSON and constructed scenarios agree" (report r) (report (Scenario.run built))

let inline_roundtrip () =
  let s =
    Scenario.make ~seed:9 ~cache_blocks:64 ~alloc_policy:Config.Lru_sp
      [ Scenario.inline_workload ~smart:false ~disk:1 tiny_program ]
  in
  let s' = ok (Scenario.of_string (Scenario.to_string s)) in
  chk_str "inline scenario round-trips" (Scenario.to_string s) (Scenario.to_string s');
  chk_str "hash stable" (Scenario.hash s) (Scenario.hash s')

let inline_errors () =
  let prog_json =
    {|{"schema":"acfc-wir/1","name":"t","ops":[{"op":"open","name":"f","size_blocks":1}]}|}
  in
  let with_workload w =
    {|{"schema":"acfc-scenario/1","cache":{"capacity_blocks":64},"workloads":[|} ^ w
    ^ {|]}|}
  in
  List.iter
    (fun (json, msg) -> expect_error msg (Scenario.of_string json))
    [
      ( with_workload ({|{"app":"din","program":|} ^ prog_json ^ "}"),
        {|scenario: pass "app" or "program", not both at $.workloads[0]|} );
      ( with_workload {|{"smart":true}|},
        {|scenario: missing required field "app" or "program" at $.workloads[0]|} );
      ( with_workload ({|{"program":|} ^ prog_json ^ {|,"file_blocks":100}|}),
        "scenario: an inline program does not take file_blocks at \
         $.workloads[0].program" );
      ( with_workload
          {|{"program":{"schema":"acfc-wir/1","name":"t","ops":[{"op":"raed"}]}}|},
        "scenario: unknown op \"raed\" (expected open, read, write, rand_read, \
         compute, advise, unlink, seq, loop or choice) at \
         $.workloads[0].program.ops[0].op" );
      ( with_workload
          {|{"program":{"schema":"acfc-wir/1","name":"t","ops":[{"op":"read","file":0,"first":0,"count":1}]}}|},
        "scenario: file 0 is not open (0 files opened so far) at \
         $.workloads[0].program.ops[0]" );
    ];
  Alcotest.check_raises "inline_workload validates"
    (Invalid_argument
       "Scenario.inline_workload: wir: file 0 is not open (0 files opened so far) \
        at $.ops[0]")
    (fun () ->
      ignore
        (Scenario.inline_workload
           (Wir.make ~name:"bad" ~category:"custom"
              [ Wir.read ~file:0 ~first:0 ~count:1 () ])))

let inline_workloads_equivalent () =
  (* Inlining the catalog references of a scenario must not change the
     run: same machine, same programs, same results. *)
  let named =
    Scenario.make ~seed:5 ~cache_blocks:819 ~alloc_policy:Config.Lru_sp
      [ Scenario.workload "din"; Scenario.workload ~file_blocks:700 "read300" ]
  in
  let inlined = Scenario.inline_workloads named in
  chk_str "named and inlined runs identical" (report (Scenario.run named))
    (report (Scenario.run inlined));
  (* The inlined form is pure data: it survives the codec. *)
  let s' = ok (Scenario.of_string (Scenario.to_string inlined)) in
  chk_str "inlined scenario round-trips" (Scenario.to_string inlined)
    (Scenario.to_string s')

let suites =
  [
    ("wir lockstep", lockstep_cases);
    ( "wir",
      [
        case "references match a live recording" references_match_live;
        case "reference counts and stats" reference_counts;
        case "stochastic streams reproducible" references_reproducible;
        case "catalog programs round-trip" roundtrip_catalog;
        case "kitchen-sink structural round-trip" roundtrip_structural;
        case "precise parse errors" parse_errors;
        case "precise validate errors" validate_errors;
        case "refstream conversions" refstream_conversions;
        case "refstream text codec" refstream_codec;
      ] );
    ( "wir scenarios",
      [
        case "inline program runs end-to-end" inline_scenario_runs;
        case "inline scenario round-trips" inline_roundtrip;
        case "inline parse and validate errors" inline_errors;
        case "inline_workloads preserves runs" inline_workloads_equivalent;
      ] );
  ]
