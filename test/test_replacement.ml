open Acfc_core
open Acfc_replacement
open Tutil

(* {2 Trace generators} *)

let sequential_structure () =
  let t = Trace.sequential ~file:0 ~blocks:5 in
  chk_int "length" 5 (Array.length t);
  chk_bool "in order" true (Array.to_list t = List.init 5 (fun i -> blk i));
  chk_int "working set" 5 (Trace.working_set_size t)

let cyclic_structure () =
  let t = Trace.cyclic ~file:0 ~blocks:3 ~passes:2 in
  chk_bool "repeats" true
    (Array.to_list t = [ blk 0; blk 1; blk 2; blk 0; blk 1; blk 2 ]);
  chk_int "working set" 3 (Trace.working_set_size t)

let random_bounds () =
  let rng = Acfc_sim.Rng.create 0 in
  let t = Trace.random ~rng ~file:0 ~blocks:10 ~length:500 in
  chk_int "length" 500 (Array.length t);
  Array.iter (fun b -> chk_bool "in range" true (Block.index b < 10)) t

let hot_cold_mix () =
  let rng = Acfc_sim.Rng.create 1 in
  let t =
    Trace.hot_cold ~rng ~hot_file:0 ~hot_blocks:5 ~cold_file:1 ~cold_blocks:100
      ~hot_fraction:0.9 ~length:2000
  in
  let hot = Array.fold_left (fun n b -> if Block.file b = 0 then n + 1 else n) 0 t in
  chk_bool "roughly 90% hot" true (hot > 1700 && hot < 1980);
  Alcotest.check_raises "bad fraction"
    (Invalid_argument "Trace.hot_cold: fraction out of range") (fun () ->
      ignore
        (Trace.hot_cold ~rng ~hot_file:0 ~hot_blocks:1 ~cold_file:1 ~cold_blocks:1
           ~hot_fraction:1.5 ~length:1))

let zipf_skew () =
  let rng = Acfc_sim.Rng.create 2 in
  let t = Trace.zipf ~rng ~file:0 ~blocks:100 ~skew:1.2 ~length:5000 in
  (* Rank 0 must be the most popular block by a wide margin. *)
  let counts = Array.make 100 0 in
  Array.iter (fun b -> counts.(Block.index b) <- counts.(Block.index b) + 1) t;
  chk_bool "head heavier than tail" true (counts.(0) > 10 * counts.(99));
  Alcotest.check_raises "bad skew" (Invalid_argument "Trace.zipf: skew must be positive")
    (fun () -> ignore (Trace.zipf ~rng ~file:0 ~blocks:1 ~skew:0.0 ~length:1))

let interleave_preserves_order =
  qcheck "interleave preserves each trace's order" ~count:100
    QCheck2.Gen.(pair (int_range 0 40) (int_range 0 40))
    (fun (n1, n2) ->
      let rng = Acfc_sim.Rng.create (n1 + (100 * n2)) in
      let t1 = Trace.sequential ~file:0 ~blocks:n1 in
      let t2 = Trace.sequential ~file:1 ~blocks:n2 in
      let merged = Trace.interleave ~rng [ t1; t2 ] in
      let project file =
        Array.to_list merged |> List.filter (fun b -> Block.file b = file)
      in
      project 0 = Array.to_list t1 && project 1 = Array.to_list t2)

(* {2 Policy behaviour} *)

let run_policy policy ~capacity trace = Policy_sim.run policy ~capacity trace

let lru_thrashes_on_cycles () =
  let t = Trace.cyclic ~file:0 ~blocks:10 ~passes:5 in
  let r = run_policy (module Policies.Lru) ~capacity:9 t in
  chk_int "every access misses" 50 r.Policy_sim.misses

let mru_wins_on_cycles () =
  let t = Trace.cyclic ~file:0 ~blocks:10 ~passes:5 in
  let r = run_policy (module Policies.Mru) ~capacity:9 t in
  (* Pass 1 misses everything; later passes miss only around the one
     sacrificial frame. *)
  chk_bool "far fewer misses" true (r.Policy_sim.misses <= 10 + (4 * 2));
  let opt = run_policy (module Policies.Opt) ~capacity:9 t in
  chk_int "MRU is optimal on cycles" opt.Policy_sim.misses r.Policy_sim.misses

let clock_second_chance () =
  (* 0 is re-referenced, so CLOCK passes over it and evicts 1. *)
  let t = [| blk 0; blk 1; blk 0; blk 2 |] in
  let r = run_policy (module Policies.Clock) ~capacity:2 t in
  chk_int "misses" 3 r.Policy_sim.misses;
  (* FIFO evicts 0 despite the re-reference. *)
  let t2 = [| blk 0; blk 1; blk 0; blk 2; blk 0 |] in
  let fifo = run_policy (module Policies.Fifo) ~capacity:2 t2 in
  let clock = run_policy (module Policies.Clock) ~capacity:2 t2 in
  chk_bool "clock beats fifo here" true (clock.Policy_sim.misses < fifo.Policy_sim.misses)

let lru2_resists_scan_pollution () =
  (* Hot pair accessed repeatedly, interrupted by one-shot scans. LRU-2
     keeps the hot pair (two references each); LRU lets the scan push
     them out. *)
  let hot = [ blk 0; blk 1 ] in
  let scan i = [ blk (10 + i); blk (20 + i) ] in
  let refs =
    List.concat
      [ hot; hot; scan 0; hot; scan 1; hot; scan 2; hot; scan 3; hot ]
  in
  let t = Array.of_list refs in
  let lru2 = run_policy (module Policies.Lru_2) ~capacity:3 t in
  let lru = run_policy (module Policies.Lru) ~capacity:3 t in
  chk_bool "LRU-2 beats LRU under scans" true
    (lru2.Policy_sim.misses < lru.Policy_sim.misses)

let fits_in_cache_only_compulsory =
  qcheck "working set <= capacity: only compulsory misses" ~count:100
    QCheck2.Gen.(pair (int_range 1 8) (list_size (int_range 1 200) (int_range 0 7)))
    (fun (blocks, refs) ->
      let t = Array.of_list (List.map (fun i -> blk (i mod blocks)) refs) in
      let ws = Trace.working_set_size t in
      List.for_all
        (fun policy ->
          let r = run_policy policy ~capacity:8 t in
          r.Policy_sim.misses = ws)
        Policies.all)

let opt_is_lower_bound =
  qcheck "OPT lower-bounds every policy" ~count:150
    QCheck2.Gen.(pair (int_range 1 6) (list_size (int_range 1 300) (int_range 0 20)))
    (fun (capacity, refs) ->
      let t = Array.of_list (List.map blk refs) in
      let opt = run_policy (module Policies.Opt) ~capacity t in
      List.for_all
        (fun policy ->
          (run_policy policy ~capacity t).Policy_sim.misses >= opt.Policy_sim.misses)
        Policies.all)

(* Exhaustive optimal miss count for tiny instances, to verify OPT. *)
let brute_force_min_misses ~capacity trace =
  let n = Array.length trace in
  let module S = Set.Make (Block) in
  let rec go pos resident =
    if pos = n then 0
    else
      let b = trace.(pos) in
      if S.mem b resident then go (pos + 1) resident
      else if S.cardinal resident < capacity then 1 + go (pos + 1) (S.add b resident)
      else
        (* Try every possible victim. *)
        S.fold
          (fun victim best ->
            let misses = 1 + go (pos + 1) (S.add b (S.remove victim resident)) in
            Stdlib.min best misses)
          resident max_int
  in
  go 0 S.empty

let opt_matches_brute_force =
  qcheck "OPT == exhaustive optimum on tiny traces" ~count:60
    QCheck2.Gen.(list_size (int_range 1 11) (int_range 0 4))
    (fun refs ->
      let t = Array.of_list (List.map blk refs) in
      let opt = run_policy (module Policies.Opt) ~capacity:2 t in
      opt.Policy_sim.misses = brute_force_min_misses ~capacity:2 t)

let two_q_scan_resistance () =
  (* A hot block re-referenced between full-cache one-shot scans. Once
     the hot block earns its way into 2Q's protected queue (evicted from
     probation, then re-referenced via the ghost list), the scans can no
     longer displace it; LRU loses it to every scan. *)
  let scan i = List.init 4 (fun j -> blk (10 + (4 * i) + j)) in
  let refs =
    List.concat
      [ [ blk 0 ]; scan 0; [ blk 0 ]; scan 1; [ blk 0 ]; scan 2; [ blk 0 ];
        scan 3; [ blk 0 ] ]
  in
  let t = Array.of_list refs in
  let two_q = run_policy (module Policies.Two_q) ~capacity:4 t in
  let lru = run_policy (module Policies.Lru) ~capacity:4 t in
  chk_bool "LRU misses everything" true (lru.Policy_sim.misses = Array.length t);
  chk_bool "2Q protects the promoted hot block" true
    (two_q.Policy_sim.misses < lru.Policy_sim.misses);
  (* And on a plain loop that fits, it still takes only compulsory
     misses. *)
  let loop = Trace.cyclic ~file:0 ~blocks:3 ~passes:6 in
  let r = run_policy (module Policies.Two_q) ~capacity:8 loop in
  chk_int "compulsory only when fitting" 3 r.Policy_sim.misses

(* {2 Indexed vs reference policies}

   The indexed LRU-2 and OPT must choose the exact victim the naive
   linear-scan reference chooses, decision by decision, on randomised
   traces (Reference.lockstep reports the first divergence). RAND is
   excluded by design: its swap-with-last array changes the victim for a
   given draw, see docs/PERF.md. *)

let lockstep_trace_gen =
  QCheck2.Gen.(
    pair (int_range 1 8) (list_size (int_range 1 400) (int_range 0 25)))

let lockstep_agrees name indexed reference =
  qcheck
    (Printf.sprintf "%s indexed == reference on random traces" name)
    ~count:120 lockstep_trace_gen
    (fun (capacity, refs) ->
      let t = Array.of_list (List.map blk refs) in
      Reference.lockstep indexed reference ~capacity t = None)

let lru2_lockstep = lockstep_agrees "LRU-2" (module Policies.Lru_2) (module Reference.Lru_2)

let opt_lockstep = lockstep_agrees "OPT" (module Policies.Opt) (module Reference.Opt)

let reference_results_match =
  (* Same hit/miss accounting end to end, not just the same victims. *)
  qcheck "indexed and reference miss counts agree" ~count:80 lockstep_trace_gen
    (fun (capacity, refs) ->
      let t = Array.of_list (List.map blk refs) in
      List.for_all
        (fun (indexed, reference) ->
          (run_policy indexed ~capacity t).Policy_sim.misses
          = (run_policy reference ~capacity t).Policy_sim.misses)
        [
          ((module Policies.Lru_2 : Policy_sim.POLICY), (module Reference.Lru_2 : Policy_sim.POLICY));
          ((module Policies.Opt), (module Reference.Opt));
        ])

let rand_uniform_and_resident =
  (* RAND's indexed array must only ever evict resident blocks (the
     framework validates this) and keep hit/miss counts plausible: at
     most the reference working set, at least the compulsory misses. *)
  qcheck "RAND stays within compulsory/total bounds" ~count:80
    QCheck2.Gen.(pair (int_range 1 8) (list_size (int_range 1 300) (int_range 0 15)))
    (fun (capacity, refs) ->
      let t = Array.of_list (List.map blk refs) in
      let r = run_policy (module Policies.Rand) ~capacity t in
      let ws = Trace.working_set_size t in
      r.Policy_sim.misses >= ws && r.Policy_sim.misses <= Array.length t)

let framework_validation () =
  Alcotest.check_raises "bad capacity"
    (Invalid_argument "Policy_sim.run: capacity must be positive") (fun () ->
      ignore (run_policy (module Policies.Lru) ~capacity:0 [| blk 0 |]));
  (* A policy that evicts a non-resident block is caught. *)
  let module Bad = struct
    type t = unit

    let name = "BAD"

    let init ~capacity:_ _ = ()

    let hit _ ~pos:_ _ = ()

    let choose_victim _ ~pos:_ ~missing:_ = blk 999

    let inserted _ ~pos:_ _ = ()

    let evicted _ _ = ()
  end in
  match run_policy (module Bad) ~capacity:1 [| blk 0; blk 1 |] with
  | _ -> Alcotest.fail "bad policy accepted"
  | exception Failure _ -> ()

let contains = contains_sub

let by_name_lookup () =
  chk_bool "finds OPT" true (Result.is_ok (Policies.by_name "opt"));
  chk_bool "finds LRU" true (Result.is_ok (Policies.by_name "LRU"));
  chk_bool "finds 2Q" true (Result.is_ok (Policies.by_name "2q"));
  chk_bool "finds ARC" true (Result.is_ok (Policies.by_name "arc"));
  (match Policies.by_name "nope" with
  | Ok _ -> Alcotest.fail "unknown name accepted"
  | Error msg ->
    chk_bool "error lists names" true
      (contains ~sub:"LRU" msg && contains ~sub:"PERCEPTRON" msg));
  (match Policies.by_name "lru3" with
  | Ok _ -> Alcotest.fail "near-miss accepted"
  | Error msg ->
    chk_bool "suggests near match" true (contains ~sub:"did you mean" msg));
  chk_int "eleven policies" 11 (List.length Policies.all)

let miss_ratio () =
  let t = Trace.cyclic ~file:0 ~blocks:4 ~passes:2 in
  let r = run_policy (module Policies.Lru) ~capacity:8 t in
  chk_float "ratio" 0.5 (Policy_sim.miss_ratio r)

let suites =
  [
    ( "replacement: traces",
      [
        case "sequential" sequential_structure;
        case "cyclic" cyclic_structure;
        case "random bounds" random_bounds;
        case "hot/cold mix" hot_cold_mix;
        case "zipf skew" zipf_skew;
        interleave_preserves_order;
      ] );
    ( "replacement: policies",
      [
        case "LRU thrashes on cycles" lru_thrashes_on_cycles;
        case "MRU optimal on cycles" mru_wins_on_cycles;
        case "CLOCK second chance" clock_second_chance;
        case "LRU-2 resists scans" lru2_resists_scan_pollution;
        case "2Q resists scans" two_q_scan_resistance;
        case "framework validation" framework_validation;
        case "policy lookup" by_name_lookup;
        case "miss ratio" miss_ratio;
        fits_in_cache_only_compulsory;
        opt_is_lower_bound;
        opt_matches_brute_force;
      ] );
    ( "replacement: indexed vs reference",
      [
        lru2_lockstep;
        opt_lockstep;
        reference_results_match;
        rand_uniform_and_resident;
      ] );
  ]
